// Additional cross-module invariants: per-channel FIFO delivery in the
// simulated comm layer (a DESIGN.md §6 commitment), coarsening-trace
// monotonicity, mt-contract determinism for a fixed match, weighted
// recursive bisection, and generator performance sanity.
#include <gtest/gtest.h>

#include "core/matching.hpp"
#include "core/partitioner.hpp"
#include "gen/generators.hpp"
#include "mt/mt_contract.hpp"
#include "mt/mt_matching.hpp"
#include "par/comm.hpp"
#include "serial/hem_matching.hpp"
#include "serial/metis_partitioner.hpp"
#include "serial/rb_partition.hpp"
#include "util/timer.hpp"

namespace gp {
namespace {

TEST(SimComm, FifoPerChannel) {
  // Rank 0 sends 50 numbered messages to rank 1 in one superstep; they
  // must arrive in send order.
  ThreadPool pool(2);
  SimComm comm(2, pool, nullptr);
  comm.superstep("send", [&](int r, Mailbox& mb) -> std::uint64_t {
    if (r == 0) {
      for (int i = 0; i < 50; ++i) mb.send(1, std::vector<int>{i});
    }
    return 1;
  });
  comm.superstep("recv", [&](int r, Mailbox& mb) -> std::uint64_t {
    if (r == 1) {
      EXPECT_EQ(mb.inbox().size(), 50u);
      const int limit = static_cast<int>(std::min<std::size_t>(
          50, mb.inbox().size()));
      for (int i = 0; i < limit; ++i) {
        EXPECT_EQ(mb.inbox()[static_cast<std::size_t>(i)].as<int>()[0], i);
      }
    }
    return 1;
  });
}

TEST(CoarseningTrace, StrictlyShrinking) {
  const auto g = delaunay_graph(20000, 3);
  PartitionOptions opts;
  opts.k = 16;
  const auto r = SerialMetisPartitioner().run(g, opts);
  ASSERT_GE(r.levels.size(), 2u);
  EXPECT_EQ(r.levels.front().vertices, g.num_vertices());
  for (std::size_t i = 1; i < r.levels.size(); ++i) {
    EXPECT_LT(r.levels[i].vertices, r.levels[i - 1].vertices);
    EXPECT_LE(r.levels[i].edges, r.levels[i - 1].edges);
  }
  EXPECT_EQ(static_cast<int>(r.levels.size()) - 1, r.coarsen_levels);
}

TEST(MtContract, DeterministicForFixedMatch) {
  // Given the same (match, cmap), the parallel contraction must be
  // bit-identical run to run regardless of worker scheduling.
  const auto g = fem_slab_graph(10, 12, 4);
  Rng rng(5);
  const auto m = hem_match_serial(g, rng);
  MatchResult mr;
  mr.match = m.match;
  mr.cmap = m.cmap;
  mr.n_coarse = m.n_coarse;
  ThreadPool pool(8);
  MtContext ctx{&pool, nullptr, 1};
  const auto a = mt_contract(g, mr, ctx, 0);
  const auto b = mt_contract(g, mr, ctx, 0);
  EXPECT_EQ(a.adjp(), b.adjp());
  EXPECT_EQ(a.adjncy(), b.adjncy());
  EXPECT_EQ(a.adjwgt(), b.adjwgt());
}

TEST(RecursiveBisection, WeightedGraphTargetsWeightNotCount) {
  // 3 heavy vertices (weight 10) + 30 light (weight 1): a 2-way split
  // must put roughly half the WEIGHT on each side, not half the count.
  GraphBuilder b(33);
  for (vid_t v = 0; v < 3; ++v) b.set_vertex_weight(v, 10);
  for (vid_t v = 0; v + 1 < 33; ++v) b.add_edge(v, v + 1);
  const auto g = b.build();
  Rng rng(2);
  const auto p = recursive_bisection(g, 2, 0.10, rng);
  const auto pw = partition_weights(g, p);
  const wgt_t total = g.total_vertex_weight();  // 60
  EXPECT_NEAR(static_cast<double>(pw[0]), static_cast<double>(total) / 2,
              static_cast<double>(total) * 0.25);
}

TEST(Generators, DelaunayScalesNearLinearly) {
  // The Morton-ordered incremental construction should be ~O(n): 60k
  // points must come in well under 10x the 6k-point time (allow noise).
  WallTimer t1;
  (void)delaunay_graph(6000, 1);
  const double small = t1.seconds();
  WallTimer t2;
  (void)delaunay_graph(60000, 1);
  const double big = t2.seconds();
  EXPECT_LT(big, std::max(0.5, 40.0 * small));  // catastrophic blowup guard
}

TEST(Coarsening, HeavyEdgeWeightsAccumulateCorrectly) {
  // After one contraction of a uniform-weight graph, coarse edge weights
  // count the fine multi-edges: total arc weight conservation law.
  const auto g = bubble_mesh_graph(5000, 4, 8);
  Rng rng(3);
  const auto m = hem_match_serial(g, rng);
  const auto c = contract_serial(g, m.match, m.cmap, m.n_coarse);
  wgt_t matched_w2 = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const vid_t mate = m.match[static_cast<std::size_t>(v)];
    if (mate == v) continue;
    const auto nbrs = g.neighbors(v);
    const auto wts = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] == mate) matched_w2 += wts[i];
    }
  }
  EXPECT_EQ(c.total_arc_weight(), g.total_arc_weight() - matched_w2);
  EXPECT_EQ(c.total_vertex_weight(), g.total_vertex_weight());
}

TEST(ProjectionInvariant, CutUnchangedBeforeRefinement) {
  // DESIGN §6: projection preserves the edge cut exactly.
  const auto g = delaunay_graph(3000, 6);
  Rng rng(4);
  const auto m = hem_match_serial(g, rng);
  const auto c = contract_serial(g, m.match, m.cmap, m.n_coarse);
  const auto coarse_p = recursive_bisection(c, 8, 0.05, rng);
  Partition fine_p{8, project_partition(m.cmap, coarse_p.where)};
  EXPECT_EQ(edge_cut(c, coarse_p), edge_cut(g, fine_p));
}

}  // namespace
}  // namespace gp
