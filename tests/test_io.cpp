// Tests for src/io: METIS .graph and DIMACS-9 .gr round trips plus
// malformed-input rejection.
#include <gtest/gtest.h>

#include <sstream>

#include "gen/generators.hpp"
#include "io/dimacs_io.hpp"
#include "io/metis_io.hpp"

namespace gp {
namespace {

TEST(MetisIo, ParsesUnweightedGraph) {
  // 3-vertex path: header "3 2", 1-based adjacency.
  std::istringstream in("% a comment\n3 2\n2\n1 3\n2\n");
  const auto g = read_metis_graph(in);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.validate().empty());
}

TEST(MetisIo, ParsesWeights) {
  // fmt 011: vertex + edge weights.
  std::istringstream in("2 1 011\n5 2 7\n3 1 7\n");
  const auto g = read_metis_graph(in);
  EXPECT_EQ(g.vertex_weight(0), 5);
  EXPECT_EQ(g.vertex_weight(1), 3);
  EXPECT_EQ(g.neighbor_weights(0)[0], 7);
}

TEST(MetisIo, RejectsBadInputs) {
  {
    std::istringstream in("");
    EXPECT_THROW(read_metis_graph(in), std::invalid_argument);
  }
  {
    std::istringstream in("3 2\n2\n1 3\n");  // missing last line
    EXPECT_THROW(read_metis_graph(in), std::invalid_argument);
  }
  {
    std::istringstream in("3 2\n9\n1 3\n2\n");  // neighbour out of range
    EXPECT_THROW(read_metis_graph(in), std::invalid_argument);
  }
  {
    std::istringstream in("3 5\n2\n1 3\n2\n");  // wrong edge count
    EXPECT_THROW(read_metis_graph(in), std::invalid_argument);
  }
}

TEST(MetisIo, RoundTripPreservesGraph) {
  const auto g = delaunay_graph(500, 3);
  std::stringstream buf;
  write_metis_graph(buf, g);
  const auto h = read_metis_graph(buf);
  EXPECT_EQ(h.adjp(), g.adjp());
  EXPECT_EQ(h.adjncy(), g.adjncy());
  EXPECT_EQ(h.adjwgt(), g.adjwgt());
  EXPECT_EQ(h.vwgt(), g.vwgt());
}

TEST(MetisIo, RoundTripWeighted) {
  GraphBuilder b(4);
  b.set_vertex_weight(0, 3);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 9);
  const auto g = b.build();
  std::stringstream buf;
  write_metis_graph(buf, g);
  const auto h = read_metis_graph(buf);
  EXPECT_EQ(h.vwgt(), g.vwgt());
  EXPECT_EQ(h.adjwgt(), g.adjwgt());
}

TEST(MetisIo, PartitionFileRoundTrip) {
  const std::vector<part_t> where = {0, 3, 1, 1, 2, 0};
  const std::string path = "/tmp/gp_test_part.txt";
  write_partition_file(path, where);
  EXPECT_EQ(read_partition_file(path), where);
}

TEST(DimacsIo, ParsesRoadFormat) {
  std::istringstream in(
      "c USA-road-d style\n"
      "p sp 3 4\n"
      "a 1 2 10\n"
      "a 2 1 10\n"
      "a 2 3 5\n"
      "a 3 2 5\n");
  const auto g = read_dimacs_gr(in);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.neighbor_weights(0)[0], 10);
}

TEST(DimacsIo, RejectsBadInputs) {
  {
    std::istringstream in("a 1 2 3\n");  // arc before p
    EXPECT_THROW(read_dimacs_gr(in), std::invalid_argument);
  }
  {
    std::istringstream in("p sp 2 1\na 1 9 3\n");  // out of range
    EXPECT_THROW(read_dimacs_gr(in), std::invalid_argument);
  }
  {
    std::istringstream in("p sp 2 5\na 1 2 3\n");  // arc count mismatch
    EXPECT_THROW(read_dimacs_gr(in), std::invalid_argument);
  }
}

TEST(DimacsIo, RoundTripPreservesGraph) {
  const auto g = road_network_graph(2000, 7);
  std::stringstream buf;
  write_dimacs_gr(buf, g);
  const auto h = read_dimacs_gr(buf);
  EXPECT_EQ(h.adjp(), g.adjp());
  EXPECT_EQ(h.adjncy(), g.adjncy());
  EXPECT_EQ(h.adjwgt(), g.adjwgt());
}

}  // namespace
}  // namespace gp
