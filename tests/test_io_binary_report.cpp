// Tests for the binary CSR snapshot format and the partition report.
#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hpp"
#include "gen/generators.hpp"
#include "io/binary_io.hpp"
#include "serial/rb_partition.hpp"

namespace gp {
namespace {

TEST(BinaryIo, RoundTripPreservesEverything) {
  GraphBuilder b(5);
  b.set_vertex_weight(0, 7);
  b.add_edge(0, 1, 3);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 4);
  b.add_edge(3, 4, 1);
  b.add_edge(4, 0, 2);
  const auto g = b.build();
  std::stringstream buf;
  write_binary_graph(buf, g);
  const auto h = read_binary_graph(buf);
  EXPECT_EQ(h.adjp(), g.adjp());
  EXPECT_EQ(h.adjncy(), g.adjncy());
  EXPECT_EQ(h.adjwgt(), g.adjwgt());
  EXPECT_EQ(h.vwgt(), g.vwgt());
}

TEST(BinaryIo, RoundTripLargeGraph) {
  const auto g = delaunay_graph(5000, 9);
  std::stringstream buf;
  write_binary_graph(buf, g);
  const auto h = read_binary_graph(buf);
  EXPECT_EQ(h.adjncy(), g.adjncy());
  EXPECT_TRUE(h.validate().empty());
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream buf;
  buf << "NOTAMAGI loads of junk";
  EXPECT_THROW(read_binary_graph(buf), std::runtime_error);
}

TEST(BinaryIo, RejectsTruncated) {
  const auto g = grid2d_graph(10, 10);
  std::stringstream buf;
  write_binary_graph(buf, g);
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_binary_graph(cut), std::runtime_error);
}

TEST(BinaryIo, EmptyGraph) {
  CsrGraph g({0}, {}, {}, {});
  std::stringstream buf;
  write_binary_graph(buf, g);
  const auto h = read_binary_graph(buf);
  EXPECT_EQ(h.num_vertices(), 0);
}

TEST(Report, RowsAddUpToTotals) {
  const auto g = grid2d_graph(20, 20);
  Rng rng(1);
  const auto p = recursive_bisection(g, 4, 0.05, rng);
  const auto rep = analyze_partition(g, p);
  EXPECT_EQ(rep.cut, edge_cut(g, p));
  EXPECT_EQ(rep.comm_volume, communication_volume(g, p));
  EXPECT_EQ(rep.boundary, boundary_size(g, p));
  wgt_t weight = 0;
  vid_t verts = 0, bverts = 0;
  wgt_t extw = 0;
  for (const auto& row : rep.parts) {
    weight += row.weight;
    verts += row.vertices;
    bverts += row.boundary_vertices;
    extw += row.external_weight;
  }
  EXPECT_EQ(weight, g.total_vertex_weight());
  EXPECT_EQ(verts, g.num_vertices());
  EXPECT_EQ(bverts, rep.boundary);
  EXPECT_EQ(extw, 2 * rep.cut);  // every cut edge counted from both sides
}

TEST(Report, FormatContainsKeyNumbers) {
  const auto g = grid2d_graph(8, 8);
  Rng rng(2);
  const auto p = recursive_bisection(g, 2, 0.05, rng);
  const auto rep = analyze_partition(g, p);
  const auto text = format_report(rep);
  EXPECT_NE(text.find("edge cut"), std::string::npos);
  EXPECT_NE(text.find("balance"), std::string::npos);
  // Per-part rows: one line per part plus header.
  EXPECT_NE(text.find("part"), std::string::npos);
  const auto no_rows = format_report(rep, false);
  EXPECT_EQ(no_rows.find("ext.weight"), std::string::npos);
}

}  // namespace
}  // namespace gp
