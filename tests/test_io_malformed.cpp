// Malformed-input corpus sweep: every file under tests/data/malformed must
// be rejected with a descriptive std::invalid_argument, never a crash, a
// silent success, or an unrelated exception type.  The corpus covers the
// failure classes a parser meets in the wild: truncation, garbage tokens,
// header/body count mismatches, out-of-range ids, and non-positive weights.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "io/dimacs_io.hpp"
#include "io/metis_io.hpp"

#ifndef GP_TEST_DATA_DIR
#error "GP_TEST_DATA_DIR must point at tests/data"
#endif

namespace gp {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus(const std::string& format) {
  const fs::path dir = fs::path(GP_TEST_DATA_DIR) / "malformed" / format;
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file()) files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(MalformedCorpus, MetisCorpusIsSubstantial) {
  EXPECT_GE(corpus("metis").size(), 10u);
}

TEST(MalformedCorpus, DimacsCorpusIsSubstantial) {
  EXPECT_GE(corpus("dimacs").size(), 10u);
}

TEST(MalformedCorpus, EveryMetisFileRejectedDescriptively) {
  for (const auto& path : corpus("metis")) {
    SCOPED_TRACE(path.filename().string());
    try {
      (void)read_metis_graph_file(path.string());
      FAIL() << "parsed without error";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("metis:"), std::string::npos) << msg;
      EXPECT_GT(msg.size(), 20u) << "diagnostic too terse: " << msg;
    } catch (const std::exception& e) {
      FAIL() << "wrong exception type: " << e.what();
    }
  }
}

TEST(MalformedCorpus, EveryDimacsFileRejectedDescriptively) {
  for (const auto& path : corpus("dimacs")) {
    SCOPED_TRACE(path.filename().string());
    try {
      (void)read_dimacs_gr_file(path.string());
      FAIL() << "parsed without error";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("dimacs:"), std::string::npos) << msg;
      EXPECT_GT(msg.size(), 20u) << "diagnostic too terse: " << msg;
    } catch (const std::exception& e) {
      FAIL() << "wrong exception type: " << e.what();
    }
  }
}

// Line numbers in diagnostics: the whole point of the hardened parsers is
// that a user can open the file at the reported line.
TEST(MalformedCorpus, MetisDiagnosticsCarryLineNumbers) {
  const fs::path p =
      fs::path(GP_TEST_DATA_DIR) / "malformed" / "metis" /
      "08_neighbor_out_of_range.graph";
  try {
    (void)read_metis_graph_file(p.string());
    FAIL() << "parsed without error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(MalformedCorpus, DimacsDiagnosticsCarryLineNumbers) {
  const fs::path p = fs::path(GP_TEST_DATA_DIR) / "malformed" / "dimacs" /
                     "08_endpoint_out_of_range.gr";
  try {
    (void)read_dimacs_gr_file(p.string());
    FAIL() << "parsed without error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace gp
