// Tests for the Jostle-style partitioner (background system inventory).
#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "gen/generators.hpp"
#include "serial/jostle_partitioner.hpp"

namespace gp {
namespace {

TEST(Jostle, CoarsensToExactlyKAndPartitionsValidly) {
  const auto g = grid2d_graph(40, 40);
  PartitionOptions opts;
  opts.k = 8;
  const auto r = JostlePartitioner().run(g, opts);
  EXPECT_TRUE(validate_partition(g, r.partition).empty());
  EXPECT_EQ(r.coarsest_vertices, 8);  // Jostle's termination rule
  EXPECT_GT(r.coarsen_levels, 4);     // 1600 -> 8 needs ~8 halvings
  for (const auto w : partition_weights(g, r.partition)) EXPECT_GT(w, 0);
}

TEST(Jostle, BalancingStepRestoresConstraint) {
  const auto g = delaunay_graph(3000, 4);
  PartitionOptions opts;
  opts.k = 12;
  opts.eps = 0.05;
  const auto r = JostlePartitioner().run(g, opts);
  EXPECT_TRUE(validate_partition(g, r.partition).empty());
  const wgt_t maxw = max_part_weight(g.total_vertex_weight(), 12, 0.05);
  for (const auto w : partition_weights(g, r.partition)) EXPECT_LE(w, maxw);
}

TEST(Jostle, QualityWithinBandOfMetis) {
  // Jostle's trivial initial partitioning leans on refinement; it should
  // still land within a modest factor of the Metis baseline.
  const auto g = grid2d_graph(48, 48);
  PartitionOptions opts;
  opts.k = 8;
  const auto metis = make_serial_partitioner()->run(g, opts);
  const auto jostle = JostlePartitioner().run(g, opts);
  EXPECT_LT(static_cast<double>(jostle.cut),
            2.0 * static_cast<double>(metis.cut) + 50.0);
}

TEST(Jostle, StallFallbackOnStarGraph) {
  // A star cannot coarsen to k vertices (one matching halves it once,
  // then everything is pinned to the hub) — the RB fallback must kick in.
  GraphBuilder b(101);
  for (vid_t v = 1; v <= 100; ++v) b.add_edge(0, v);
  const auto g = b.build();
  PartitionOptions opts;
  opts.k = 4;
  const auto r = JostlePartitioner().run(g, opts);
  EXPECT_TRUE(validate_partition(g, r.partition).empty());
  for (const auto w : partition_weights(g, r.partition)) EXPECT_GT(w, 0);
}

TEST(Jostle, FactoryName) {
  EXPECT_EQ(make_jostle_partitioner()->name(), "jostle");
}

}  // namespace
}  // namespace gp
