// Tests for the matching-policy variants (HEM / LEM / RM) and additional
// device / comm coverage.
#include <gtest/gtest.h>

#include "core/matching.hpp"
#include "gen/generators.hpp"
#include "gpu/device_buffer.hpp"
#include "par/comm.hpp"
#include "serial/hem_matching.hpp"

namespace gp {
namespace {

class MatchPolicies : public ::testing::TestWithParam<MatchPolicy> {};

TEST_P(MatchPolicies, ValidInvolutionOnMeshes) {
  Rng rng(3);
  for (const auto& g :
       {grid2d_graph(30, 30), delaunay_graph(1500, 2),
        road_network_graph(2000, 4)}) {
    auto m = match_serial_policy(g, GetParam(), rng);
    EXPECT_TRUE(validate_match(m.match).empty());
    EXPECT_TRUE(validate_cmap(m.match, m.cmap, m.n_coarse).empty());
    // Matching must shrink the graph (meshes have few isolated vertices).
    EXPECT_LT(m.n_coarse, static_cast<vid_t>(0.75 * g.num_vertices()));
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, MatchPolicies,
                         ::testing::Values(MatchPolicy::kHeavyEdge,
                                           MatchPolicy::kLightEdge,
                                           MatchPolicy::kRandom));

TEST(MatchPolicies, HemPrefersHeavyLemPrefersLight) {
  // Vertex 0 has a heavy edge to 1 and a light edge to 2.
  GraphBuilder b(3);
  b.add_edge(0, 1, 9);
  b.add_edge(0, 2, 1);
  const auto g = b.build();
  // Deterministic check across several seeds (visit order random, but
  // whoever is visited first among {0,1,2}, the policy decides 0's mate:
  // vertex 1's only neighbour is 0; vertex 2's only neighbour is 0).
  int hem_took_heavy = 0, lem_took_light = 0, trials = 20;
  for (int s = 0; s < trials; ++s) {
    Rng r1(static_cast<std::uint64_t>(s));
    auto hem = match_serial_policy(g, MatchPolicy::kHeavyEdge, r1);
    if (hem.match[0] == 1) ++hem_took_heavy;
    Rng r2(static_cast<std::uint64_t>(s));
    auto lem = match_serial_policy(g, MatchPolicy::kLightEdge, r2);
    if (lem.match[0] == 2) ++lem_took_light;
  }
  // When vertex 0 is visited first (about 1/3 of the orders) the policy
  // dictates the choice; when 1 or 2 goes first they grab 0 regardless.
  EXPECT_GT(hem_took_heavy, trials / 4);
  EXPECT_GT(lem_took_light, trials / 4);
  EXPECT_GT(hem_took_heavy, lem_took_light - trials);  // sanity
}

TEST(MatchPolicies, HemYieldsBetterCoarseningQualityThanLem) {
  // On weighted coarse graphs, collapsing heavy edges keeps coarse edge
  // weight low.  Compare total coarse arc weight after two levels.
  Rng rng(5);
  CsrGraph g = delaunay_graph(5000, 6);
  auto run = [&](MatchPolicy p, std::uint64_t seed) {
    Rng r(seed);
    CsrGraph cur = g;
    for (int lvl = 0; lvl < 3; ++lvl) {
      auto m = match_serial_policy(cur, p, r);
      cur = contract_serial(cur, m.match, m.cmap, m.n_coarse);
    }
    return cur.total_arc_weight();
  };
  // Average over seeds to dodge noise.
  wgt_t hem = 0, lem = 0;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    hem += run(MatchPolicy::kHeavyEdge, s);
    lem += run(MatchPolicy::kLightEdge, s);
  }
  EXPECT_LT(hem, lem);
}

// --- extra device coverage ---

TEST(DeviceBuffer, MoveTransfersOwnershipAndAccounting) {
  Device dev;
  DeviceBuffer<int> a(dev, 100, "a");
  const auto used = dev.allocated_bytes();
  DeviceBuffer<int> b = std::move(a);
  EXPECT_EQ(dev.allocated_bytes(), used);  // no double count
  b.release();
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

TEST(DeviceBuffer, FillSetsAllElements) {
  Device dev;
  DeviceBuffer<int> a(dev, 257, "a");
  a.fill(42);
  for (const int x : a.d2h_vector()) EXPECT_EQ(x, 42);
}

TEST(Device, PeakBytesTracksHighWaterMark) {
  Device dev;
  EXPECT_EQ(dev.peak_bytes(), 0u);
  {
    DeviceBuffer<char> a(dev, 1000, "a");
    { DeviceBuffer<char> b(dev, 5000, "b"); }
    EXPECT_EQ(dev.allocated_bytes(), 1000u);
  }
  EXPECT_EQ(dev.allocated_bytes(), 0u);
  EXPECT_EQ(dev.peak_bytes(), 6000u);
}

TEST(Device, ResetCountersClearsTransfersNotAllocations) {
  Device dev;
  DeviceBuffer<int> a(dev, 10, "a");
  a.h2d(std::vector<int>(10, 1));
  EXPECT_GT(dev.total_h2d_bytes(), 0u);
  dev.reset_counters();
  EXPECT_EQ(dev.total_h2d_bytes(), 0u);
  EXPECT_EQ(dev.allocated_bytes(), 40u);
}

// --- extra comm coverage ---

TEST(SimComm, AllgatherMetersRingTraffic) {
  ThreadPool pool(4);
  CostLedger ledger;
  SimComm comm(4, pool, &ledger);
  std::vector<std::vector<int>> contrib(4, std::vector<int>(250, 7));
  comm.allgather("t", contrib);
  // Ring model: (P-1) messages, (P-1) * 1000 bytes.
  EXPECT_EQ(ledger.bytes_with_prefix("comm/allgather/"), 3000u);
}

}  // namespace
}  // namespace gp
