// Tests for src/model: the cost ledger's charge functions, prefix sums,
// merge behaviour, and the machine-model arithmetic the benches rely on.
#include <gtest/gtest.h>

#include "model/machine_model.hpp"

namespace gp {
namespace {

TEST(CostLedger, SerialChargeUsesCpuRate) {
  MachineModel m;
  CostLedger l(m);
  l.charge_serial("a", 1000000);
  EXPECT_DOUBLE_EQ(l.total_seconds(), 1.0e6 / m.cpu_work_rate);
}

TEST(CostLedger, MtPassUsesMaxThreadWork) {
  MachineModel m;
  CostLedger l(m);
  l.charge_mt_pass("pass", {100, 400, 200, 300});
  const double per_core = m.cpu_work_rate * m.cpu_parallel_eff;
  EXPECT_DOUBLE_EQ(l.total_seconds(), 400.0 / per_core + m.cpu_barrier_s);
  EXPECT_DOUBLE_EQ(l.entries()[0].imbalance, 400.0 / 250.0);
}

TEST(CostLedger, GpuKernelAppliesImbalanceAndTail) {
  MachineModel m;
  CostLedger l(m);
  l.charge_gpu_kernel("k", 1000000, 2.0);
  const double expect =
      ((1.0e6 + m.gpu_low_occupancy_tail_units) / m.gpu_work_rate) * 2.0 +
      m.gpu_kernel_launch_s;
  EXPECT_DOUBLE_EQ(l.total_seconds(), expect);
}

TEST(CostLedger, GpuKernelImbalanceFloorIsOne) {
  CostLedger l;
  l.charge_gpu_kernel("k", 100, 0.25);  // nonsense < 1 gets clamped
  EXPECT_DOUBLE_EQ(l.entries()[0].imbalance, 1.0);
}

TEST(CostLedger, TransferUsesLatencyPlusBandwidth) {
  MachineModel m;
  CostLedger l(m);
  l.charge_transfer("t", 5'500'000);
  EXPECT_DOUBLE_EQ(l.total_seconds(),
                   m.pcie_latency_s + 5.5e6 / m.pcie_bw_bytes_per_s);
}

TEST(CostLedger, MessagesUseAlphaBeta) {
  MachineModel m;
  CostLedger l(m);
  l.charge_messages("msg", 10, 1000);
  EXPECT_DOUBLE_EQ(l.total_seconds(),
                   10 * m.net_alpha_s + 1000 * m.net_beta_s_per_byte);
}

TEST(CostLedger, PrefixQueries) {
  CostLedger l;
  l.charge_serial("coarsen/match", 100);
  l.charge_serial("coarsen/contract", 200);
  l.charge_serial("initpart/rb", 300);
  l.charge_transfer("transfer/h2d/g", 1000);
  EXPECT_GT(l.seconds_with_prefix("coarsen/"), 0.0);
  EXPECT_DOUBLE_EQ(
      l.seconds_with_prefix("coarsen/") + l.seconds_with_prefix("initpart/") +
          l.seconds_with_prefix("transfer/"),
      l.total_seconds());
  EXPECT_EQ(l.bytes_with_prefix("transfer/"), 1000u);
  EXPECT_EQ(l.bytes_with_prefix("nope/"), 0u);
}

TEST(CostLedger, MergePrefixesLabels) {
  CostLedger a, b;
  b.charge_serial("x", 100);
  a.merge("sub/", b);
  ASSERT_EQ(a.entries().size(), 1u);
  EXPECT_EQ(a.entries()[0].label, "sub/x");
  EXPECT_DOUBLE_EQ(a.total_seconds(), b.total_seconds());
}

TEST(CostLedger, ClearResets) {
  CostLedger l;
  l.charge_serial("a", 1000);
  l.clear();
  EXPECT_DOUBLE_EQ(l.total_seconds(), 0.0);
  EXPECT_TRUE(l.entries().empty());
}

TEST(CostLedger, RawCharge) {
  CostLedger l;
  l.charge_raw("raw", 1.5);
  EXPECT_DOUBLE_EQ(l.total_seconds(), 1.5);
}

TEST(CostLedger, JsonExportContainsEntries) {
  CostLedger l;
  l.charge_serial("coarsen/match", 1234);
  l.charge_transfer("transfer/h2d/g", 5678);
  const auto json = l.to_json();
  EXPECT_NE(json.find("\"coarsen/match\""), std::string::npos);
  EXPECT_NE(json.find("\"work_units\": 1234"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\": 5678"), std::string::npos);
  // Valid-ish JSON shape: array brackets and one comma between entries.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
}

TEST(MachineModel, PaperTestbedIsDefault) {
  const auto m = MachineModel::paper_testbed();
  EXPECT_EQ(m.cpu_cores, 8);        // Xeon E5540
  EXPECT_GT(m.gpu_work_rate, m.cpu_work_rate);  // Titan >> one core
}

}  // namespace
}  // namespace gp
