// Tests for src/mt: two-round lock-free matching, parallel contraction
// (vs the serial reference), parallel initial partitioning, buffered
// refinement, and the full shared-memory driver.
#include <gtest/gtest.h>

#include "core/matching.hpp"
#include "core/partitioner.hpp"
#include "gen/generators.hpp"
#include "mt/mt_contract.hpp"
#include "mt/mt_initpart.hpp"
#include "mt/mt_matching.hpp"
#include "mt/mt_partitioner.hpp"
#include "mt/mt_refine.hpp"
#include "serial/rb_partition.hpp"

namespace gp {
namespace {

struct PoolCtx {
  ThreadPool pool;
  CostLedger ledger;
  MtContext ctx;
  explicit PoolCtx(int threads, std::uint64_t seed = 1)
      : pool(threads), ctx{&pool, &ledger, seed} {}
};

class MtMatchThreads : public ::testing::TestWithParam<int> {};

TEST_P(MtMatchThreads, AlwaysValidAfterConflictResolution) {
  // The core property of the paper's lock-free scheme: whatever races
  // happen in round 1, round 2 restores a valid involution.
  PoolCtx pc(GetParam());
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    pc.ctx.seed = seed + 1;
    const auto g = delaunay_graph(3000, seed);
    MtMatchStats st;
    const auto m = mt_match(g, pc.ctx, 0, &st);
    ASSERT_TRUE(validate_match(m.match).empty());
    ASSERT_TRUE(validate_cmap(m.match, m.cmap, m.n_coarse).empty());
    // The matching must actually shrink the graph substantially.
    EXPECT_LT(m.n_coarse, static_cast<vid_t>(0.75 * 3000));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, MtMatchThreads,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(MtMatch, SingleThreadHasNoConflicts) {
  PoolCtx pc(1);
  const auto g = grid2d_graph(40, 40);
  MtMatchStats st;
  (void)mt_match(g, pc.ctx, 0, &st);
  // One thread can never race with itself in round 1... but it CAN create
  // "conflicts" with itself when a later vertex re-matches an earlier
  // match? No: round 1 checks match[u] == invalid before writing, and a
  // single thread's writes are immediately visible to itself.
  EXPECT_EQ(st.conflicts, 0u);
}

TEST(MtContract, MatchesSerialReference) {
  PoolCtx pc(4);
  const auto g = delaunay_graph(2000, 3);
  const auto m = mt_match(g, pc.ctx, 0);
  ASSERT_TRUE(validate_match(m.match).empty());
  const auto par = mt_contract(g, m, pc.ctx, 0);
  const auto ser = contract_serial(g, m.match, m.cmap, m.n_coarse);
  EXPECT_TRUE(par.validate().empty()) << par.validate();
  EXPECT_EQ(par.adjp(), ser.adjp());
  EXPECT_EQ(par.adjncy(), ser.adjncy());
  EXPECT_EQ(par.adjwgt(), ser.adjwgt());
  EXPECT_EQ(par.vwgt(), ser.vwgt());
}

TEST(MtContract, WeightConservation) {
  PoolCtx pc(8);
  const auto g = fem_slab_graph(10, 14, 4);
  const auto m = mt_match(g, pc.ctx, 0);
  const auto c = mt_contract(g, m, pc.ctx, 0);
  EXPECT_EQ(c.total_vertex_weight(), g.total_vertex_weight());
  EXPECT_LE(c.total_arc_weight(), g.total_arc_weight());
}

TEST(MtInitPart, BalancedKParts) {
  PoolCtx pc(8);
  const auto g = grid2d_graph(40, 40);
  const auto p = mt_initial_partition(g, 8, 0.05, pc.ctx);
  EXPECT_TRUE(validate_partition(g, p).empty());
  auto pw = partition_weights(g, p);
  for (const auto w : pw) EXPECT_GT(w, 0);
  EXPECT_LE(partition_balance(g, p), 1.35);
}

TEST(MtInitPart, BestOfThreadsNotWorseThanSingleTrialTypically) {
  // Statistical: 8-trial best-of should beat the median single trial.
  const auto g = delaunay_graph(1500, 5);
  PoolCtx many(8, 1);
  const auto p8 = mt_initial_partition(g, 4, 0.05, many.ctx);
  wgt_t single_sum = 0;
  for (std::uint64_t s = 1; s <= 5; ++s) {
    PoolCtx one(1, s * 13);
    const auto p1 = mt_initial_partition(g, 4, 0.05, one.ctx);
    single_sum += edge_cut(g, p1);
  }
  EXPECT_LE(edge_cut(g, p8), single_sum / 5 + 30);
}

TEST(MtRefine, ImprovesCutKeepsBalance) {
  PoolCtx pc(4);
  const auto g = grid2d_graph(32, 32);
  Rng rng(2);
  Partition p = recursive_bisection(g, 8, 0.03, rng);
  const wgt_t before = edge_cut(g, p);
  // Perturb: move a band of vertices to the wrong part.
  for (vid_t v = 100; v < 160; ++v) p.where[static_cast<std::size_t>(v)] = 0;
  const wgt_t perturbed = edge_cut(g, p);
  ASSERT_GT(perturbed, before);
  auto st = mt_refine(g, p, 0.08, 8, pc.ctx, 0);
  EXPECT_TRUE(validate_partition(g, p).empty());
  EXPECT_LT(st.cut_after, perturbed);
  const wgt_t maxw = max_part_weight(g.total_vertex_weight(), 8, 0.08);
  for (const auto w : partition_weights(g, p)) EXPECT_LE(w, maxw);
}

TEST(MtRefine, TerminatesOnIdlePass) {
  PoolCtx pc(2);
  const auto g = grid2d_graph(16, 16);
  Rng rng(4);
  Partition p = recursive_bisection(g, 4, 0.03, rng);
  auto st = mt_refine(g, p, 0.03, 50, pc.ctx, 0);
  // Must stop long before 50 passes on an already-good partition.
  EXPECT_LT(st.passes, 10);
}

class MtDriverThreads : public ::testing::TestWithParam<int> {};

TEST_P(MtDriverThreads, FullPipelineValid) {
  const auto g = delaunay_graph(6000, 7);
  PartitionOptions opts;
  opts.k = 16;
  opts.threads = GetParam();
  const auto r = MtMetisPartitioner().run(g, opts);
  EXPECT_TRUE(validate_partition(g, r.partition, r.cut, r.balance).empty());
  EXPECT_EQ(r.cut, edge_cut(g, r.partition));
  EXPECT_LE(r.balance, 1.35);
  EXPECT_GT(r.coarsen_levels, 1);
  for (const auto w : partition_weights(g, r.partition)) EXPECT_GT(w, 0);
}

INSTANTIATE_TEST_SUITE_P(Threads, MtDriverThreads, ::testing::Values(1, 4, 8));

TEST(MtDriver, QualityComparableToSerial) {
  // Table III's premise: the parallel partitioners land within ~15% of
  // serial Metis.  Allow slack for the small test instance.
  const auto g = grid2d_graph(64, 64);
  PartitionOptions opts;
  opts.k = 8;
  const auto serial = make_serial_partitioner()->run(g, opts);
  const auto mt = MtMetisPartitioner().run(g, opts);
  EXPECT_LT(static_cast<double>(mt.cut),
            1.6 * static_cast<double>(serial.cut) + 50.0);
}

TEST(MtDriver, ModeledTimeBeatSerialOnBigGraph) {
  // The whole point of mt-metis: with 8 modeled cores it must be several
  // times faster than the serial baseline on a sizable graph.
  const auto g = delaunay_graph(30000, 9);
  PartitionOptions opts;
  opts.k = 16;
  const auto serial = make_serial_partitioner()->run(g, opts);
  const auto mt = MtMetisPartitioner().run(g, opts);
  EXPECT_LT(mt.modeled_seconds, serial.modeled_seconds / 2.0);
}

TEST(MtDriver, FactoryName) {
  EXPECT_EQ(make_mt_partitioner()->name(), "mt-metis");
}

TEST(MtDriver, RoadNetworkBalanceAcrossSeeds) {
  // Regression: refinement used to stop after one idle *direction* pass,
  // occasionally leaving a part 2.5x overweight on road networks (long
  // chains drain slowly).  Both the two-idle-pass rule and the stretched
  // pass budget must hold the constraint across seeds.
  const auto g = road_network_graph(60000, 5);
  const wgt_t maxw = max_part_weight(g.total_vertex_weight(), 64, 0.03);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    PartitionOptions opts;
    opts.k = 64;
    opts.seed = seed;
    const auto r = MtMetisPartitioner().run(g, opts);
    ASSERT_TRUE(validate_partition(g, r.partition, r.cut, r.balance).empty()) << seed;
    for (const auto w : partition_weights(g, r.partition)) {
      EXPECT_LE(w, maxw) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace gp
