// Tests for src/hybrid/multi_gpu_partitioner: the paper's future-work
// extension (partitioning graphs too large for one device's memory).
#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "gen/generators.hpp"
#include "gpu/device.hpp"
#include "hybrid/gp_partitioner.hpp"
#include "hybrid/multi_gpu_partitioner.hpp"

namespace gp {
namespace {

class MultiGpuDevices : public ::testing::TestWithParam<int> {};

TEST_P(MultiGpuDevices, FullPipelineValid) {
  const auto g = delaunay_graph(20000, 3);
  PartitionOptions opts;
  opts.k = 16;
  opts.gpu_devices = GetParam();
  opts.gpu_cpu_threshold = 2500;
  MultiGpuLog log;
  const auto r = multi_gpu_run(g, opts, &log);
  EXPECT_TRUE(validate_partition(g, r.partition).empty())
      << validate_partition(g, r.partition);
  EXPECT_EQ(r.cut, edge_cut(g, r.partition));
  EXPECT_EQ(log.devices, GetParam());
  EXPECT_GT(log.gpu_coarsen_levels, 0);
  for (const auto w : partition_weights(g, r.partition)) EXPECT_GT(w, 0);
  const wgt_t maxw = max_part_weight(g.total_vertex_weight(), 16, 0.03);
  for (const auto w : partition_weights(g, r.partition)) EXPECT_LE(w, maxw);
}

INSTANTIATE_TEST_SUITE_P(Devices, MultiGpuDevices,
                         ::testing::Values(1, 2, 3, 4));

TEST(MultiGpu, PeakMemoryScalesDownWithDevices) {
  // The point of the extension: per-device memory shrinks ~1/D.
  const auto g = bubble_mesh_graph(60000, 8, 2);
  PartitionOptions opts;
  opts.k = 8;
  opts.gpu_cpu_threshold = 2500;

  MultiGpuLog log1, log4;
  opts.gpu_devices = 1;
  (void)multi_gpu_run(g, opts, &log1);
  opts.gpu_devices = 4;
  (void)multi_gpu_run(g, opts, &log4);
  EXPECT_LT(static_cast<double>(log4.peak_device_bytes),
            0.45 * static_cast<double>(log1.peak_device_bytes));
}

TEST(MultiGpu, PartitionsGraphTooLargeForOneDevice) {
  // Cap device memory so the single-GPU partitioner cannot even hold the
  // graph, then show 4 devices succeed — the motivating scenario.
  const auto g = delaunay_graph(60000, 5);
  PartitionOptions opts;
  opts.k = 8;
  opts.gpu_cpu_threshold = 2500;
  // The graph needs ~(n+1)*8 + 2m*(4+8) + n*8 bytes ≈ 5.3 MB (plus the
  // working arrays); cap at 3 MB per device.
  opts.gpu_memory_bytes = 3 << 20;

  // A single device cannot hold the graph: the run completes only by
  // degrading to the pure-CPU fallback.
  const auto single = make_hybrid_partitioner()->run(g, opts);
  EXPECT_TRUE(single.health.degraded);
  EXPECT_EQ(single.health.fallbacks, 1u);
  EXPECT_TRUE(validate_partition(g, single.partition).empty());

  // Four devices fit the shards and stay on the nominal GPU path.
  opts.gpu_devices = 4;
  MultiGpuLog log;
  const auto r = multi_gpu_run(g, opts, &log);
  EXPECT_TRUE(validate_partition(g, r.partition).empty());
  EXPECT_FALSE(r.health.degraded);
  EXPECT_GT(log.gpu_coarsen_levels, 0);
  EXPECT_LE(log.peak_device_bytes, std::size_t{3} << 20);
}

TEST(MultiGpu, HaloExchangeIsMetered) {
  const auto g = grid2d_graph(120, 120);
  PartitionOptions opts;
  opts.k = 8;
  opts.gpu_devices = 4;
  opts.gpu_cpu_threshold = 2000;
  MultiGpuLog log;
  (void)multi_gpu_run(g, opts, &log);
  // A block-split grid has remote neighbours at every block seam.
  EXPECT_GT(log.halo_exchange_bytes, 0u);
}

TEST(MultiGpu, QualityComparableToSingleGpu) {
  const auto g = delaunay_graph(20000, 7);
  PartitionOptions opts;
  opts.k = 16;
  opts.gpu_cpu_threshold = 2500;
  const auto single = make_hybrid_partitioner()->run(g, opts);
  opts.gpu_devices = 4;
  const auto multi = make_multi_gpu_partitioner()->run(g, opts);
  // Halo-restricted matching costs some quality; within 40% of the
  // single-device result on this instance.
  EXPECT_LT(static_cast<double>(multi.cut),
            1.4 * static_cast<double>(single.cut) + 50.0);
}

TEST(MultiGpu, OneDeviceMatchesHybridStructure) {
  // D=1 must behave like a (host-replayed) single-GPU run: valid result,
  // zero halo bytes.
  const auto g = grid2d_graph(64, 64);
  PartitionOptions opts;
  opts.k = 8;
  opts.gpu_devices = 1;
  opts.gpu_cpu_threshold = 1000;
  MultiGpuLog log;
  const auto r = multi_gpu_run(g, opts, &log);
  EXPECT_TRUE(validate_partition(g, r.partition).empty());
  EXPECT_EQ(log.halo_exchange_bytes, 0u);
}

TEST(MultiGpu, FactoryName) {
  EXPECT_EQ(make_multi_gpu_partitioner()->name(), "gp-metis-multi");
}

TEST(MultiGpu, MoreDevicesThanWorkStillValid) {
  // 20 vertices over 8 devices: several shards hold 2-3 vertices and the
  // handoff happens immediately — the degenerate path must still work.
  const auto g = grid2d_graph(5, 4);
  PartitionOptions opts;
  opts.k = 2;
  opts.gpu_devices = 8;
  opts.gpu_cpu_threshold = 4;
  MultiGpuLog log;
  const auto r = multi_gpu_run(g, opts, &log);
  EXPECT_TRUE(validate_partition(g, r.partition).empty());
  for (const auto w : partition_weights(g, r.partition)) EXPECT_GT(w, 0);
}

}  // namespace
}  // namespace gp
