// Tests for the nested-dissection ordering application.
#include <gtest/gtest.h>

#include <numeric>

#include "apps/nested_dissection.hpp"
#include "gen/generators.hpp"

namespace gp {
namespace {

TEST(NestedDissection, ProducesAValidPermutation) {
  const auto g = grid2d_graph(20, 20);
  const auto perm = nested_dissection_order(g);
  ASSERT_EQ(perm.size(), 400u);
  std::vector<char> seen(400, 0);
  for (const vid_t p : perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 400);
    ASSERT_FALSE(seen[static_cast<std::size_t>(p)]) << "duplicate position";
    seen[static_cast<std::size_t>(p)] = 1;
  }
}

TEST(NestedDissection, ReducesFillOnGrid) {
  // The textbook result: natural (row-major) ordering of a s x s grid
  // fills O(s^3); nested dissection fills O(s^2 log s).  At s = 24 the
  // gap is already pronounced.
  const vid_t s = 24;
  const auto g = grid2d_graph(s, s);
  std::vector<vid_t> natural(static_cast<std::size_t>(g.num_vertices()));
  std::iota(natural.begin(), natural.end(), 0);
  const auto nd = nested_dissection_order(g, {16, 1});
  const auto fill_natural = symbolic_fill_in(g, natural);
  const auto fill_nd = symbolic_fill_in(g, nd);
  EXPECT_LT(fill_nd, (fill_natural * 3) / 4)
      << "natural " << fill_natural << " vs nd " << fill_nd;
}

TEST(NestedDissection, ReducesFillOnDelaunay) {
  const auto g = delaunay_graph(600, 3);
  std::vector<vid_t> natural(static_cast<std::size_t>(g.num_vertices()));
  std::iota(natural.begin(), natural.end(), 0);
  const auto nd = nested_dissection_order(g, {24, 1});
  EXPECT_LT(symbolic_fill_in(g, nd), symbolic_fill_in(g, natural));
}

TEST(NestedDissection, LeafSizedGraphIsIdentityClass) {
  const auto g = grid2d_graph(4, 4);
  const auto perm = nested_dissection_order(g, {64, 1});
  // Below the leaf size the order is the input order.
  for (vid_t v = 0; v < 16; ++v) EXPECT_EQ(perm[static_cast<std::size_t>(v)], v);
}

TEST(NestedDissection, HandlesDisconnectedGraphs) {
  GraphBuilder b(40);
  for (vid_t v = 0; v < 19; ++v) b.add_edge(v, v + 1);
  for (vid_t v = 20; v < 39; ++v) b.add_edge(v, v + 1);
  const auto g = b.build();
  const auto perm = nested_dissection_order(g, {8, 1});
  std::vector<char> seen(40, 0);
  for (const vid_t p : perm) {
    ASSERT_FALSE(seen[static_cast<std::size_t>(p)]);
    seen[static_cast<std::size_t>(p)] = 1;
  }
}

TEST(SymbolicFill, KnownSmallCases) {
  // Path graph: eliminating ends-first never fills; natural order of a
  // path also never fills (each eliminated vertex has <= 1 later nbr).
  const auto path = [] {
    GraphBuilder b(6);
    for (vid_t v = 0; v + 1 < 6; ++v) b.add_edge(v, v + 1);
    return b.build();
  }();
  std::vector<vid_t> natural(6);
  std::iota(natural.begin(), natural.end(), 0);
  EXPECT_EQ(symbolic_fill_in(path, natural), 0u);

  // Star eliminated hub-first: clique on the leaves -> C(5,2) = 10 fill.
  GraphBuilder b(6);
  for (vid_t v = 1; v < 6; ++v) b.add_edge(0, v);
  const auto star = b.build();
  std::vector<vid_t> hub_first = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(symbolic_fill_in(star, hub_first), 10u);
  // Hub last: leaves have no later neighbours except the hub -> 0 fill.
  std::vector<vid_t> hub_last = {5, 0, 1, 2, 3, 4};
  EXPECT_EQ(symbolic_fill_in(star, hub_last), 0u);
}

}  // namespace
}  // namespace gp
