// Tests for the shared (graph, options) precondition validation and for
// each driver's behaviour at the legal boundaries (k = 1, k = n, tiny
// graphs).
#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "gen/generators.hpp"
#include "service/engine.hpp"

namespace gp {
namespace {

std::vector<std::unique_ptr<Partitioner>> all_partitioners() {
  std::vector<std::unique_ptr<Partitioner>> v;
  v.push_back(make_serial_partitioner());
  v.push_back(make_mt_partitioner());
  v.push_back(make_par_partitioner());
  v.push_back(make_hybrid_partitioner());
  return v;
}

TEST(Validation, RejectsBadK) {
  const auto g = grid2d_graph(4, 4);
  for (const auto& p : all_partitioners()) {
    PartitionOptions opts;
    opts.k = 0;
    EXPECT_THROW(p->run(g, opts), std::invalid_argument) << p->name();
    opts.k = -3;
    EXPECT_THROW(p->run(g, opts), std::invalid_argument) << p->name();
    opts.k = 17;  // > n = 16
    EXPECT_THROW(p->run(g, opts), std::invalid_argument) << p->name();
  }
}

TEST(Validation, RejectsBadEps) {
  const auto g = grid2d_graph(4, 4);
  PartitionOptions opts;
  opts.k = 2;
  opts.eps = -0.1;
  EXPECT_THROW(validate_options(g, opts), std::invalid_argument);
  opts.eps = 1.0;
  EXPECT_THROW(validate_options(g, opts), std::invalid_argument);
  opts.eps = 0.0;
  EXPECT_NO_THROW(validate_options(g, opts));
}

TEST(Validation, RejectsBadThreadsRanks) {
  const auto g = grid2d_graph(4, 4);
  PartitionOptions opts;
  opts.k = 2;
  opts.threads = 0;
  EXPECT_THROW(validate_options(g, opts), std::invalid_argument);
  opts.threads = 8;
  opts.ranks = 0;
  EXPECT_THROW(validate_options(g, opts), std::invalid_argument);
}

TEST(Validation, KEqualsOneIsIdentityPartition) {
  const auto g = grid2d_graph(8, 8);
  for (const auto& p : all_partitioners()) {
    PartitionOptions opts;
    opts.k = 1;
    const auto r = p->run(g, opts);
    EXPECT_TRUE(validate_partition(g, r.partition).empty()) << p->name();
    EXPECT_EQ(r.cut, 0) << p->name();
  }
}

TEST(Validation, KEqualsNWorks) {
  // One vertex per part: cut = total edge weight, perfectly balanced.
  const auto g = grid2d_graph(3, 3);
  for (const auto& p : all_partitioners()) {
    PartitionOptions opts;
    opts.k = 9;
    opts.eps = 0.0;
    const auto r = p->run(g, opts);
    EXPECT_TRUE(validate_partition(g, r.partition).empty()) << p->name();
    // Not all drivers reach the singleton optimum, but every part must
    // hold at least one vertex when k == n.
    auto pw = partition_weights(g, r.partition);
    for (const auto w : pw) EXPECT_GE(w, 1) << p->name();
  }
}

TEST(Validation, TinyAndDegenerateGraphs) {
  // Two vertices, one edge, k = 2.
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const auto g = b.build();
  for (const auto& p : all_partitioners()) {
    PartitionOptions opts;
    opts.k = 2;
    const auto r = p->run(g, opts);
    EXPECT_TRUE(validate_partition(g, r.partition).empty()) << p->name();
    EXPECT_EQ(r.cut, 1) << p->name();
  }
}

TEST(Validation, EdgelessGraph) {
  // Isolated vertices: any balanced assignment has cut 0.
  GraphBuilder b(8);
  const auto g = b.build();
  for (const auto& p : all_partitioners()) {
    PartitionOptions opts;
    opts.k = 4;
    const auto r = p->run(g, opts);
    EXPECT_TRUE(validate_partition(g, r.partition).empty()) << p->name();
    EXPECT_EQ(r.cut, 0) << p->name();
  }
}

TEST(Validation, DisconnectedGraph) {
  // Two separate grids; partitioners must still produce k valid parts.
  GraphBuilder b(32);
  for (vid_t base : {0, 16}) {
    for (vid_t y = 0; y < 4; ++y) {
      for (vid_t x = 0; x < 4; ++x) {
        const vid_t v = base + y * 4 + x;
        if (x + 1 < 4) b.add_edge(v, v + 1);
        if (y + 1 < 4) b.add_edge(v, v + 4);
      }
    }
  }
  const auto g = b.build();
  for (const auto& p : all_partitioners()) {
    PartitionOptions opts;
    opts.k = 4;
    const auto r = p->run(g, opts);
    EXPECT_TRUE(validate_partition(g, r.partition).empty()) << p->name();
  }
}

// --- service-mode configuration (gpmetis --serve flags land here) ---

TEST(Validation, ServeRejectsBadQueueDepth) {
  ServiceConfig cfg;
  cfg.queue_depth = 0;
  EXPECT_THROW(validate_service_config(cfg), std::invalid_argument);
}

TEST(Validation, ServeRejectsBadDeadline) {
  ServiceConfig cfg;
  cfg.default_deadline_seconds = -1.0;
  EXPECT_THROW(validate_service_config(cfg), std::invalid_argument);
  cfg.default_deadline_seconds = 0.0;  // 0 = no deadline, legal
  EXPECT_NO_THROW(validate_service_config(cfg));
}

TEST(Validation, ServeRejectsBadRetryPolicy) {
  ServiceConfig cfg;
  cfg.retry.max_attempts = 0;
  EXPECT_THROW(validate_service_config(cfg), std::invalid_argument);
  cfg = ServiceConfig{};
  cfg.retry.backoff_multiplier = 0.9;  // backoff may not shrink
  EXPECT_THROW(validate_service_config(cfg), std::invalid_argument);
  cfg = ServiceConfig{};
  cfg.retry.jitter = -0.1;
  EXPECT_THROW(validate_service_config(cfg), std::invalid_argument);
}

TEST(Validation, ServeRejectsBadWorkersAndBudget) {
  ServiceConfig cfg;
  cfg.workers = -2;
  EXPECT_THROW(validate_service_config(cfg), std::invalid_argument);
  cfg = ServiceConfig{};
  cfg.cost_budget_seconds = -5.0;
  EXPECT_THROW(validate_service_config(cfg), std::invalid_argument);
  EXPECT_NO_THROW(validate_service_config(ServiceConfig{}));
}

// A service request with invalid *partition* options must flow through
// the same validate_options path as one-shot runs: the request fails
// fast (no retry — a malformed request cannot be ladder-fixed).
TEST(Validation, ServeRequestWithBadOptionsFailsWithoutRetry) {
  const auto g = grid2d_graph(4, 4);
  ServiceConfig cfg;
  cfg.workers = 0;
  ServiceEngine engine(cfg);
  PartitionOptions opts;
  opts.k = 0;
  auto t = engine.submit(g, opts, Priority::kNormal, -1, "metis");
  ASSERT_TRUE(engine.run_one());
  const auto out = t->wait();
  EXPECT_EQ(out.state, RequestState::kFailed);
  EXPECT_EQ(out.attempts, 1);
  ASSERT_EQ(out.attempt_trail.size(), 1u);
  EXPECT_EQ(out.attempt_trail[0].rfind("metis:invalid", 0), 0u)
      << out.attempt_trail[0];
  EXPECT_EQ(engine.stats().retries, 0u);
  EXPECT_EQ(engine.stats().failed, 1u);
}

}  // namespace
}  // namespace gp
