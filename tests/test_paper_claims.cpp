// Regression-locks for the paper's evaluation claims at test scale —
// the same checks the bench binaries print, small enough for ctest.
// (bench/fig5_speedup etc. run the full-scale versions.)
#include <gtest/gtest.h>

#include <map>

#include "core/partitioner.hpp"
#include "gen/generators.hpp"

namespace gp {
namespace {

struct MatrixResult {
  double modeled = 0;
  wgt_t cut = 0;
};

std::map<std::string, MatrixResult> run_systems(const CsrGraph& g,
                                                part_t k,
                                                vid_t gpu_threshold) {
  std::map<std::string, MatrixResult> out;
  std::vector<std::unique_ptr<Partitioner>> systems;
  systems.push_back(make_serial_partitioner());
  systems.push_back(make_par_partitioner());
  systems.push_back(make_mt_partitioner());
  systems.push_back(make_hybrid_partitioner());
  for (const auto& sys : systems) {
    PartitionOptions opts;
    opts.k = k;
    opts.eps = 0.03;
    opts.gpu_cpu_threshold = gpu_threshold;
    // Best of 2, as the paper takes the minimum of repeated runs.
    MatrixResult best{1e300, 0};
    for (std::uint64_t s = 1; s <= 2; ++s) {
      opts.seed = s;
      const auto r = sys->run(g, opts);
      if (r.modeled_seconds < best.modeled) {
        best = {r.modeled_seconds, r.cut};
      }
    }
    out[sys->name()] = best;
  }
  return out;
}

TEST(PaperClaims, Fig5OrderingOnLargeGraphShapes) {
  // GP-metis > Metis and > ParMetis; the large-graph rows are where the
  // margins are structural, so test those two shapes — at the bench's
  // evaluation scale (1/64): below it the graphs sit in the GPU's
  // low-occupancy regime, which is exactly the effect the paper's
  // GPU->CPU threshold exists to dodge.
  for (const char* name : {"hugebubble", "usa-roads"}) {
    const auto g = make_paper_graph(name, 1.0 / 64.0, 2);
    const auto rows = run_systems(g, 64, 4096);
    EXPECT_LT(rows.at("gp-metis").modeled, rows.at("metis").modeled) << name;
    EXPECT_LT(rows.at("gp-metis").modeled, rows.at("parmetis").modeled)
        << name;
    EXPECT_LT(rows.at("mt-metis").modeled, rows.at("metis").modeled) << name;
  }
}

TEST(PaperClaims, TableIIIComparableQuality) {
  for (const char* name : {"ldoor", "delaunay"}) {
    const auto g = make_paper_graph(name, 1.0 / 256.0, 3);
    const auto rows = run_systems(g, 64, 2048);
    const auto metis_cut = static_cast<double>(rows.at("metis").cut);
    for (const char* sys : {"parmetis", "mt-metis", "gp-metis"}) {
      EXPECT_LT(static_cast<double>(rows.at(sys).cut), 1.6 * metis_cut)
          << name << "/" << sys;
    }
  }
}

TEST(PaperClaims, TransferStaysSmallFractionOfGpMetis) {
  // "the size of the coarse graph ... makes the transfer very quick":
  // transfers must stay a minor share of GP-metis' modeled time.
  const auto g = make_paper_graph("hugebubble", 1.0 / 256.0, 4);
  PartitionOptions opts;
  opts.k = 64;
  opts.gpu_cpu_threshold = 2048;
  const auto r = make_hybrid_partitioner()->run(g, opts);
  EXPECT_LT(r.phases.transfer, 0.35 * r.modeled_seconds);
  EXPECT_GT(r.phases.transfer, 0.0);
}

}  // namespace
}  // namespace gp
