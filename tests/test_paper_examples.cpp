// Executable versions of the paper's worked illustrations (Figs. 3 & 4)
// and a geometric verification of the Delaunay generator.
#include <gtest/gtest.h>

#include <cmath>

#include "core/matching.hpp"
#include "gen/generators.hpp"
#include "hybrid/gpu_matching.hpp"
#include "util/rng.hpp"

namespace gp {
namespace {

TEST(PaperFig3, ConflictResolutionExample) {
  // Fig. 3 illustrates the matching step on an 8-vertex graph where
  // round-1 races leave match(i) = j but match(j) != i, and the resolve
  // kernel self-matches the losers.  Reproduce the post-round-1 state
  // directly and check the resolver's rule.
  //
  // Round-1 state (hand-crafted conflicts):
  //   0 <-> 1 consistent pair
  //   2 -> 3, but 3 -> 4 and 4 -> 3: (3,4) survives, 2 self-matches
  //   5 -> 6, 6 -> 5 consistent
  //   7 -> 5: loser (5 already paired with 6), self-matches
  std::vector<vid_t> match = {1, 0, 3, 4, 3, 6, 5, 5};
  // Apply the paper's rule: if match(match(v)) != v then match(v) = v.
  std::vector<vid_t> resolved = match;
  for (vid_t v = 0; v < 8; ++v) {
    const vid_t m = match[static_cast<std::size_t>(v)];
    if (match[static_cast<std::size_t>(m)] != v) {
      resolved[static_cast<std::size_t>(v)] = v;
    }
  }
  EXPECT_TRUE(validate_match(resolved).empty());
  EXPECT_EQ(resolved, (std::vector<vid_t>{1, 0, 2, 4, 3, 6, 5, 7}));
}

TEST(PaperFig4, CmapCreationExample) {
  // Fig. 4's walk-through: 8 vertices, matching (0,1)(2,2)(3,4)(5,7)(6,6)
  // -> 5 coarse vertices.  The prefix-sum pipeline must produce the same
  // labels as the serial rule.
  const std::vector<vid_t> match = {1, 0, 2, 4, 3, 7, 6, 5};
  const auto [cmap, nc] = build_cmap_serial(match);
  EXPECT_EQ(nc, 5);  // "the number of vertices in Cgraph is 5"
  EXPECT_EQ(cmap, (std::vector<vid_t>{0, 0, 1, 2, 2, 3, 4, 3}));
}

TEST(PaperFig4, GpuPipelineOnTheExample) {
  // Run the actual 4-kernel device pipeline on the Fig. 4 matching by
  // embedding it in a graph whose HEM result is forced through weights.
  // Simpler: feed the match through the contraction reference instead —
  // the GPU pipeline equivalence is covered by
  // GpuMatch.CmapPipelineMatchesSerialReference; here we verify the
  // contraction of the example collapses to 5 vertices.
  GraphBuilder b(8);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 7);
  b.add_edge(6, 7);
  const auto g = b.build();
  const std::vector<vid_t> match = {1, 0, 2, 4, 3, 7, 6, 5};
  ASSERT_TRUE(validate_match(match).empty());
  const auto [cmap, nc] = build_cmap_serial(match);
  const auto c = contract_serial(g, match, cmap, nc);
  EXPECT_EQ(c.num_vertices(), 5);
  EXPECT_TRUE(c.validate().empty());
  EXPECT_EQ(c.total_vertex_weight(), 8);
}

TEST(Delaunay, EmptyCircumcircleProperty) {
  // The defining property: no point lies strictly inside the
  // circumcircle of any triangle.  Verify on a small instance by brute
  // force over the triangle set reconstructed from the graph... the
  // graph alone does not expose triangles, so verify the weaker (but
  // still discriminating) property pair:
  //   1. the graph is planar-sized and connected (checked elsewhere);
  //   2. every edge is locally Delaunay in expectation: the average edge
  //      length must be close to the theoretical E[Delaunay edge] for
  //      uniform points (~0.54/sqrt(lambda)); a non-Delaunay
  //      triangulation (e.g. a fan) fails this badly.
  const vid_t n = 2000;
  const auto g = delaunay_graph(n, 21);
  // Regenerate the points exactly as the generator does (same RNG path).
  Rng rng(21);
  std::vector<std::pair<double, double>> pts(static_cast<std::size_t>(n));
  for (auto& p : pts) {
    p.first = rng.next_double();
    p.second = rng.next_double();
  }
  // The generator relabels points in Morton order; recompute that order.
  auto morton = [](std::uint32_t x, std::uint32_t y) {
    auto spread = [](std::uint32_t a) {
      a &= 0xffff;
      a = (a | (a << 8)) & 0x00ff00ff;
      a = (a | (a << 4)) & 0x0f0f0f0f;
      a = (a | (a << 2)) & 0x33333333;
      a = (a | (a << 1)) & 0x55555555;
      return a;
    };
    return spread(x) | (spread(y) << 1);
  };
  std::vector<std::size_t> order(pts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return morton(static_cast<std::uint32_t>(pts[a].first * 65535.0),
                  static_cast<std::uint32_t>(pts[a].second * 65535.0)) <
           morton(static_cast<std::uint32_t>(pts[b].first * 65535.0),
                  static_cast<std::uint32_t>(pts[b].second * 65535.0));
  });
  std::vector<std::pair<double, double>> sorted(pts.size());
  for (std::size_t i = 0; i < order.size(); ++i) sorted[i] = pts[order[i]];

  double total_len = 0;
  eid_t cnt = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const vid_t u : g.neighbors(v)) {
      if (u < v) continue;
      const double dx = sorted[static_cast<std::size_t>(v)].first -
                        sorted[static_cast<std::size_t>(u)].first;
      const double dy = sorted[static_cast<std::size_t>(v)].second -
                        sorted[static_cast<std::size_t>(u)].second;
      total_len += std::sqrt(dx * dx + dy * dy);
      ++cnt;
    }
  }
  const double avg = total_len / static_cast<double>(cnt);
  // Theory: mean Delaunay edge length ≈ 32/(9*pi) / sqrt(n) ≈ 1.13/sqrt(n)
  // for unit-intensity Poisson; allow a wide band.
  const double expect = 1.13 / std::sqrt(static_cast<double>(n));
  EXPECT_GT(avg, 0.5 * expect);
  EXPECT_LT(avg, 2.0 * expect);
}

}  // namespace
}  // namespace gp
