// Tests for src/par: the simulated message-passing layer and the
// ParMetis-like distributed partitioner.
#include <gtest/gtest.h>

#include "core/matching.hpp"
#include "core/partitioner.hpp"
#include "gen/generators.hpp"
#include "par/comm.hpp"
#include "par/parmetis_partitioner.hpp"

namespace gp {
namespace {

TEST(SimComm, MessagesDeliverNextSuperstep) {
  ThreadPool pool(4);
  SimComm comm(4, pool, nullptr);
  // Superstep 1: rank r sends {r*10} to rank (r+1)%4.
  comm.superstep("send", [&](int r, Mailbox& mb) -> std::uint64_t {
    EXPECT_TRUE(mb.inbox().empty());
    mb.send((r + 1) % 4, std::vector<int>{r * 10});
    return 1;
  });
  // Superstep 2: each rank sees exactly the message from its predecessor.
  comm.superstep("recv", [&](int r, Mailbox& mb) -> std::uint64_t {
    EXPECT_EQ(mb.inbox().size(), 1u);
    const auto data = mb.inbox()[0].as<int>();
    EXPECT_EQ(data.size(), 1u);
    EXPECT_EQ(data[0], ((r + 3) % 4) * 10);
    EXPECT_EQ(mb.inbox()[0].from, (r + 3) % 4);
    return 1;
  });
  EXPECT_EQ(comm.supersteps(), 2u);
}

TEST(SimComm, MessagesDeliveredExactlyOnce) {
  ThreadPool pool(3);
  SimComm comm(3, pool, nullptr);
  comm.superstep("send", [&](int r, Mailbox& mb) -> std::uint64_t {
    for (int dst = 0; dst < 3; ++dst) {
      if (dst != r) mb.send(dst, std::vector<int>{r});
    }
    return 1;
  });
  std::atomic<int> received{0};
  comm.superstep("recv", [&](int, Mailbox& mb) -> std::uint64_t {
    received += static_cast<int>(mb.inbox().size());
    return 1;
  });
  EXPECT_EQ(received.load(), 6);
  // Next superstep: inboxes are empty again (no re-delivery).
  comm.superstep("idle", [&](int, Mailbox& mb) -> std::uint64_t {
    EXPECT_TRUE(mb.inbox().empty());
    return 1;
  });
}

TEST(SimComm, LedgerChargedPerSuperstep) {
  ThreadPool pool(2);
  CostLedger ledger;
  SimComm comm(2, pool, &ledger);
  comm.superstep("w", [&](int r, Mailbox& mb) -> std::uint64_t {
    if (r == 0) mb.send(1, std::vector<double>(100, 1.0));
    return 1000;
  });
  EXPECT_GT(ledger.seconds_with_prefix("compute/w"), 0.0);
  EXPECT_EQ(ledger.bytes_with_prefix("comm/w"), 800u);
}

TEST(SimComm, PodRoundTrip) {
  struct Pod {
    int a;
    double b;
  };
  ThreadPool pool(2);
  SimComm comm(2, pool, nullptr);
  comm.superstep("send", [&](int r, Mailbox& mb) -> std::uint64_t {
    if (r == 0) mb.send(1, std::vector<Pod>{{1, 2.5}, {3, 4.5}});
    return 1;
  });
  comm.superstep("recv", [&](int r, Mailbox& mb) -> std::uint64_t {
    if (r == 1) {
      const auto v = mb.inbox()[0].as<Pod>();
      EXPECT_EQ(v.size(), 2u);
      EXPECT_EQ(v[0].a, 1);
      EXPECT_DOUBLE_EQ(v[1].b, 4.5);
    }
    return 1;
  });
}

class ParRanks : public ::testing::TestWithParam<int> {};

TEST_P(ParRanks, FullPipelineValid) {
  const auto g = delaunay_graph(5000, 3);
  PartitionOptions opts;
  opts.k = 8;
  opts.ranks = GetParam();
  const auto r = ParMetisPartitioner().run(g, opts);
  EXPECT_TRUE(validate_partition(g, r.partition).empty())
      << validate_partition(g, r.partition);
  EXPECT_EQ(r.cut, edge_cut(g, r.partition));
  for (const auto w : partition_weights(g, r.partition)) EXPECT_GT(w, 0);
  EXPECT_LE(r.balance, 1.35);
  EXPECT_GT(r.coarsen_levels, 1);
}

INSTANTIATE_TEST_SUITE_P(Ranks, ParRanks, ::testing::Values(1, 2, 4, 8));

TEST(ParDriver, QualityComparableToSerial) {
  const auto g = grid2d_graph(64, 64);
  PartitionOptions opts;
  opts.k = 8;
  const auto serial = make_serial_partitioner()->run(g, opts);
  const auto par = ParMetisPartitioner().run(g, opts);
  EXPECT_LT(static_cast<double>(par.cut),
            1.7 * static_cast<double>(serial.cut) + 50.0);
}

TEST(ParDriver, CommCostsAreCharged) {
  const auto g = delaunay_graph(4000, 5);
  PartitionOptions opts;
  opts.k = 8;
  opts.ranks = 8;
  const auto r = ParMetisPartitioner().run(g, opts);
  // A distributed run must have metered ghost exchanges, match requests,
  // and the initial-partitioning broadcast.
  EXPECT_GT(r.ledger.seconds_with_prefix("comm/"), 0.0);
  EXPECT_GT(r.ledger.bytes_with_prefix("comm/ghost/"), 0u);
  EXPECT_GT(r.ledger.bytes_with_prefix("comm/initpart/broadcast"), 0u);
}

TEST(ParDriver, SingleRankHasNoPointToPointTraffic) {
  const auto g = grid2d_graph(40, 40);
  PartitionOptions opts;
  opts.k = 4;
  opts.ranks = 1;
  const auto r = ParMetisPartitioner().run(g, opts);
  EXPECT_TRUE(validate_partition(g, r.partition).empty());
  // With one rank there are no remote neighbours, hence no ghost bytes.
  EXPECT_EQ(r.ledger.bytes_with_prefix("comm/ghost/"), 0u);
}

TEST(ParDriver, ModeledSlowerThanMtButFasterThanSerial) {
  // Fig. 5's ordering: ParMetis beats serial Metis but loses to mt-metis
  // (message overhead).  A road network makes the gap structural — its
  // enormous boundary-to-size ratio keeps the ghost exchanges expensive.
  const auto g = road_network_graph(120000, 11);
  PartitionOptions opts;
  opts.k = 16;
  const auto serial = make_serial_partitioner()->run(g, opts);
  const auto par = ParMetisPartitioner().run(g, opts);
  const auto mt = make_mt_partitioner()->run(g, opts);
  EXPECT_LT(par.modeled_seconds, serial.modeled_seconds);
  EXPECT_GT(par.modeled_seconds, mt.modeled_seconds);
}

TEST(ParDriver, FactoryName) {
  EXPECT_EQ(make_par_partitioner()->name(), "parmetis");
}

TEST(ParFolding, ValidAndComparableQuality) {
  const auto g = delaunay_graph(12000, 6);
  PartitionOptions opts;
  opts.k = 8;
  opts.ranks = 8;
  const auto plain = ParMetisPartitioner().run(g, opts);
  opts.par_fold_threshold = 4000;
  const auto folded = ParMetisPartitioner().run(g, opts);
  EXPECT_TRUE(validate_partition(g, folded.partition).empty());
  // Folding's replicated best-of-P coarsening should stay within a
  // reasonable band of the plain pipeline's quality.
  EXPECT_LT(static_cast<double>(folded.cut),
            1.4 * static_cast<double>(plain.cut) + 50.0);
}

TEST(ParFolding, RemovesLateGhostRounds) {
  const auto g = road_network_graph(40000, 3);
  PartitionOptions opts;
  opts.k = 16;
  opts.ranks = 8;
  const auto plain = ParMetisPartitioner().run(g, opts);
  opts.par_fold_threshold = 20000;  // fold early
  const auto folded = ParMetisPartitioner().run(g, opts);
  // Folding trades coarsening-phase messages for one broadcast: the
  // match/ghost byte volume in the coarsening phase must drop.
  const auto coarsen_comm_bytes = [](const PartitionResult& r) {
    return r.ledger.bytes_with_prefix("comm/ghost/matchstate") +
           r.ledger.bytes_with_prefix("comm/coarsen/");
  };
  EXPECT_LT(coarsen_comm_bytes(folded), coarsen_comm_bytes(plain));
  EXPECT_TRUE(validate_partition(g, folded.partition).empty());
}

}  // namespace
}  // namespace gp
