// Cross-cutting property tests: every partitioner on every graph family
// and seed must produce valid, balanced partitions; permutation
// invariance; weighted-graph handling; cut-accounting consistency.
#include <gtest/gtest.h>

#include "core/graph_ops.hpp"
#include "core/partitioner.hpp"
#include "galois/gmetis_partitioner.hpp"
#include "gen/generators.hpp"
#include "serial/jostle_partitioner.hpp"
#include "serial/kway_refine.hpp"
#include "serial/rb_partition.hpp"

namespace gp {
namespace {

struct FuzzCase {
  const char* family;
  std::uint64_t seed;
};

class PartitionerFuzz
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

CsrGraph make_family(const std::string& family, std::uint64_t seed) {
  if (family == "er") return erdos_renyi_graph(2000, 6000, seed);
  if (family == "rmat") return rmat_graph(11, 6000, seed);
  if (family == "delaunay") return delaunay_graph(2000, seed);
  if (family == "grid") return grid2d_graph(40 + static_cast<vid_t>(seed % 7), 45);
  if (family == "road") return road_network_graph(4000, seed);
  if (family == "bubble") return bubble_mesh_graph(4000, 4, seed);
  if (family == "fem") return fem_slab_graph(8 + static_cast<vid_t>(seed % 3), 12, 4);
  throw std::logic_error("bad family");
}

TEST_P(PartitionerFuzz, AllSystemsAlwaysValid) {
  const auto [family, seed_int] = GetParam();
  const auto seed = static_cast<std::uint64_t>(seed_int);
  const auto g = make_family(family, seed);
  ASSERT_TRUE(g.validate().empty()) << family << ": " << g.validate();

  std::vector<std::unique_ptr<Partitioner>> systems;
  systems.push_back(make_serial_partitioner());
  systems.push_back(make_mt_partitioner());
  systems.push_back(make_par_partitioner());
  systems.push_back(make_hybrid_partitioner());
  systems.push_back(make_multi_gpu_partitioner());
  systems.push_back(make_jostle_partitioner());
  systems.push_back(make_gmetis_partitioner());

  for (const auto& sys : systems) {
    PartitionOptions opts;
    opts.k = 8;
    opts.seed = seed + 1;
    opts.gpu_cpu_threshold = 512;  // force GPU phases even on small inputs
    const auto r = sys->run(g, opts);
    ASSERT_TRUE(validate_partition(g, r.partition).empty())
        << family << "/" << sys->name();
    EXPECT_EQ(r.cut, edge_cut(g, r.partition)) << family << "/" << sys->name();
    EXPECT_GE(r.modeled_seconds, 0.0);
    // Every part populated (k << n on all families here).
    for (const auto w : partition_weights(g, r.partition)) {
      EXPECT_GT(w, 0) << family << "/" << sys->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, PartitionerFuzz,
    ::testing::Combine(::testing::Values("er", "rmat", "delaunay", "grid",
                                         "road", "bubble", "fem"),
                       ::testing::Values(1, 2)));

TEST(Properties, CutIsPermutationInvariant) {
  const auto g = delaunay_graph(1500, 4);
  Rng rng(9);
  const auto p = recursive_bisection(g, 8, 0.05, rng);
  const wgt_t cut = edge_cut(g, p);

  // Random relabeling: same partition expressed on the permuted graph
  // must have the same cut and balance.
  std::vector<vid_t> perm(static_cast<std::size_t>(g.num_vertices()));
  for (vid_t v = 0; v < g.num_vertices(); ++v) perm[static_cast<std::size_t>(v)] = v;
  Rng shuffler(10);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[shuffler.next_below(i)]);
  }
  const auto h = permute(g, perm);
  Partition q;
  q.k = p.k;
  q.where.resize(p.where.size());
  for (std::size_t v = 0; v < perm.size(); ++v) {
    q.where[static_cast<std::size_t>(perm[v])] = p.where[v];
  }
  EXPECT_EQ(edge_cut(h, q), cut);
  EXPECT_DOUBLE_EQ(partition_balance(h, q), partition_balance(g, p));
  EXPECT_EQ(communication_volume(h, q), communication_volume(g, p));
}

TEST(Properties, WeightedVerticesRespectWeightedBalance) {
  // Power-of-two vertex weights: balance must be computed on weights,
  // not counts.
  GraphBuilder b(64);
  Rng rng(3);
  for (vid_t v = 0; v < 64; ++v) {
    b.set_vertex_weight(v, 1 + static_cast<wgt_t>(rng.next_below(8)));
  }
  for (vid_t v = 0; v < 64; ++v) {
    for (vid_t u = v + 1; u < 64; ++u) {
      if (rng.next_double() < 0.15) b.add_edge(v, u);
    }
  }
  const auto g = b.build();
  for (const auto& make :
       {make_serial_partitioner, make_mt_partitioner, make_hybrid_partitioner}) {
    const auto sys = make();
    PartitionOptions opts;
    opts.k = 4;
    opts.eps = 0.10;
    const auto r = sys->run(g, opts);
    ASSERT_TRUE(validate_partition(g, r.partition).empty()) << sys->name();
    const wgt_t maxw = max_part_weight(g.total_vertex_weight(), 4, 0.10);
    for (const auto w : partition_weights(g, r.partition)) {
      EXPECT_LE(w, maxw + 7) << sys->name();  // +max vwgt-1 integral slack
    }
  }
}

TEST(Properties, WeightedEdgesDriveTheCut) {
  // Two cliques joined by one light bridge vs heavy internal edges: every
  // partitioner must cut the bridge, not the cliques.
  GraphBuilder b(16);
  for (vid_t v = 0; v < 8; ++v)
    for (vid_t u = v + 1; u < 8; ++u) b.add_edge(v, u, 100);
  for (vid_t v = 8; v < 16; ++v)
    for (vid_t u = v + 1; u < 16; ++u) b.add_edge(v, u, 100);
  b.add_edge(3, 12, 1);  // the bridge
  const auto g = b.build();
  for (const auto& make :
       {make_serial_partitioner, make_mt_partitioner, make_par_partitioner,
        make_hybrid_partitioner}) {
    const auto sys = make();
    PartitionOptions opts;
    opts.k = 2;
    const auto r = sys->run(g, opts);
    EXPECT_EQ(r.cut, 1) << sys->name();
  }
}

TEST(Properties, RefinementCutAccountingConsistent) {
  // kway_refine_serial's internal bookkeeping must agree with the direct
  // recount on every family.
  for (const char* family : {"er", "delaunay", "road"}) {
    const auto g = make_family(family, 5);
    Partition p;
    p.k = 6;
    p.where.resize(static_cast<std::size_t>(g.num_vertices()));
    Rng rng(6);
    for (auto& w : p.where) w = static_cast<part_t>(rng.next_below(6));
    auto st = kway_refine_serial(g, p, 0.10, 6);
    EXPECT_EQ(st.cut_after, edge_cut(g, p)) << family;
    EXPECT_LE(st.cut_after, st.cut_before) << family;
  }
}

TEST(Properties, OddKRecursiveBisectionSplitsPerMetisRule) {
  // Non-power-of-two k: every bisection node splits its k' parts as
  // k0 = ceil(k'/2) to the left and k' - k0 to the right, targeting
  // total * k0 / k' vertex weight on the left (Metis' k-odd rule).  The
  // result must have exactly k non-empty parts, with the left half's
  // aggregate weight on target within the level-tightened eps window.
  const double eps = 0.03;
  for (const part_t k : {3, 5, 6, 7, 12}) {
    for (const std::uint64_t seed : {1ULL, 4ULL}) {
      const CsrGraph g = delaunay_graph(2500, seed);
      Rng rng(seed * 13 + static_cast<std::uint64_t>(k));
      const Partition p = recursive_bisection(g, k, eps, rng);
      ASSERT_EQ(p.k, k);
      EXPECT_TRUE(validate_partition(g, p).empty()) << "k=" << k;

      const auto weights = partition_weights(g, p);
      ASSERT_EQ(weights.size(), static_cast<std::size_t>(k));
      for (part_t i = 0; i < k; ++i) {
        EXPECT_GT(weights[static_cast<std::size_t>(i)], 0)
            << "empty part " << i << " at k=" << k;
      }

      // Root split: parts [0, k0) came from the left subtree.
      const part_t k0 = (k + 1) / 2;
      wgt_t left = 0;
      for (part_t i = 0; i < k0; ++i) left += weights[static_cast<std::size_t>(i)];
      const wgt_t total = g.total_vertex_weight();
      const double target = static_cast<double>(total) * k0 / k;
      EXPECT_NEAR(static_cast<double>(left), target,
                  static_cast<double>(total) * eps + k)
          << "k=" << k << " seed=" << seed;
    }
  }
}

TEST(Properties, SeedChangesResultButNotValidity) {
  const auto g = delaunay_graph(3000, 1);
  PartitionOptions a, b;
  a.k = b.k = 8;
  a.seed = 1;
  b.seed = 2;
  const auto ra = make_serial_partitioner()->run(g, a);
  const auto rb = make_serial_partitioner()->run(g, b);
  EXPECT_TRUE(validate_partition(g, ra.partition).empty());
  EXPECT_TRUE(validate_partition(g, rb.partition).empty());
  EXPECT_NE(ra.partition.where, rb.partition.where);
  // Quality should not swing wildly with the seed.
  const double ratio = static_cast<double>(std::max(ra.cut, rb.cut)) /
                       static_cast<double>(std::max<wgt_t>(1, std::min(ra.cut, rb.cut)));
  EXPECT_LT(ratio, 1.5);
}

}  // namespace
}  // namespace gp
