// Tests for the single-dispatch GPU pipelines (DESIGN.md §3.9): the
// decoupled-lookback scan against the blocked reference, the one-dispatch
// partition/compact built on it, the fused-launch charging rule, and the
// end-to-end guarantees — byte-identical partitions under both GpuScanMode
// values and the kernel-count collapse the fusion exists to buy.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/partitioner.hpp"
#include "gen/generators.hpp"
#include "gpu/device.hpp"
#include "gpu/device_buffer.hpp"
#include "gpu/scan.hpp"
#include "util/rng.hpp"

namespace gp {
namespace {

std::vector<std::int64_t> random_input(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<std::int64_t>(rng.next_below(16));
  return v;
}

/// Sizes spanning every geometry edge: empty, single element, one tile,
/// one-off-a-tile either way, and a many-tile bulk size.
const std::int64_t kSizes[] = {0, 1, 2, 1023, 1024, 1025, 50000, 300017};

TEST(Scan, LookbackMatchesBlockedInclusive) {
  Device dev;
  for (const auto n : kSizes) {
    const auto input = random_input(n, 11 + static_cast<std::uint64_t>(n));
    auto a = to_device(dev, input, "a");
    auto b = to_device(dev, input, "b");
    const auto ta = device_inclusive_scan(dev, a, "s", GpuScanMode::kBlocked);
    const auto tb = device_inclusive_scan(dev, b, "s", GpuScanMode::kLookback);
    EXPECT_EQ(ta, tb) << "n=" << n;
    EXPECT_EQ(a.d2h_vector(), b.d2h_vector()) << "n=" << n;
  }
}

TEST(Scan, LookbackMatchesBlockedExclusive) {
  Device dev;
  for (const auto n : kSizes) {
    const auto input = random_input(n, 23 + static_cast<std::uint64_t>(n));
    auto a = to_device(dev, input, "a");
    auto b = to_device(dev, input, "b");
    const auto ta = device_exclusive_scan(dev, a, "x", GpuScanMode::kBlocked);
    const auto tb = device_exclusive_scan(dev, b, "x", GpuScanMode::kLookback);
    EXPECT_EQ(ta, tb) << "n=" << n;
    EXPECT_EQ(a.d2h_vector(), b.d2h_vector()) << "n=" << n;
  }
}

TEST(Scan, AllZerosAndSingleElement) {
  Device dev;
  // All-zeros: every descriptor aggregate is zero — the look-back must
  // still chain PREFIX descriptors, not confuse zero with "unpublished".
  std::vector<std::int64_t> zeros(4096, 0);
  auto z = to_device(dev, zeros, "z");
  EXPECT_EQ(device_inclusive_scan(dev, z, "s", GpuScanMode::kLookback), 0);
  for (const auto v : z.d2h_vector()) ASSERT_EQ(v, 0);

  std::vector<std::int64_t> one{42};
  auto o = to_device(dev, one, "o");
  EXPECT_EQ(device_inclusive_scan(dev, o, "s", GpuScanMode::kLookback), 42);
  EXPECT_EQ(o.d2h_vector()[0], 42);
  auto ox = to_device(dev, one, "ox");
  EXPECT_EQ(device_exclusive_scan(dev, ox, "x", GpuScanMode::kLookback), 42);
  EXPECT_EQ(ox.d2h_vector()[0], 0);
}

TEST(Scan, LookbackIsOneDispatch) {
  Device dev;
  for (const std::int64_t n : {1, 1024, 300017}) {
    auto buf = to_device(dev, random_input(n, 5), "b");
    const auto before = dev.kernels_launched();
    (void)device_inclusive_scan(dev, buf, "s", GpuScanMode::kLookback);
    EXPECT_EQ(dev.kernels_launched() - before, 1u) << "n=" << n;
  }
}

TEST(Scan, BlockedDegenerateGeometryIsOneLaunch) {
  Device dev;
  // n <= one tile: the blocked scan must short-circuit to a single launch
  // (historically it still ran the 3-kernel pipeline on a 1-block grid).
  for (const std::int64_t n : {1, 100, 1024}) {
    auto buf = to_device(dev, random_input(n, 3), "b");
    const auto before = dev.kernels_launched();
    (void)device_inclusive_scan(dev, buf, "s", GpuScanMode::kBlocked);
    EXPECT_EQ(dev.kernels_launched() - before, 1u) << "n=" << n;
  }
  // Past one tile it is the classic 3-launch pipeline.
  auto big = to_device(dev, random_input(4096, 3), "big");
  const auto before = dev.kernels_launched();
  (void)device_inclusive_scan(dev, big, "s", GpuScanMode::kBlocked);
  EXPECT_EQ(dev.kernels_launched() - before, 3u);
}

TEST(Scan, CompactMatchesStdCopyIf) {
  Device dev;
  const auto pred = [](std::int64_t v) { return v % 3 == 0; };
  for (const auto n : kSizes) {
    const auto input = random_input(n, 31 + static_cast<std::uint64_t>(n));
    auto in = to_device(dev, input, "in");
    DeviceBuffer<std::int64_t> out(dev, input.size() + 1, "out");
    const auto before = dev.kernels_launched();
    const auto kept = device_compact(dev, in, out, pred);
    EXPECT_LE(dev.kernels_launched() - before, 1u) << "n=" << n;
    std::vector<std::int64_t> want;
    std::copy_if(input.begin(), input.end(), std::back_inserter(want), pred);
    ASSERT_EQ(kept, static_cast<std::int64_t>(want.size())) << "n=" << n;
    const auto got = out.d2h_vector();
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Scan, PartitionSplitsWithReversedTail) {
  Device dev;
  const auto pred = [](std::int64_t v) { return v < 8; };
  const std::int64_t n = 50000;
  const auto input = random_input(n, 47);
  auto in = to_device(dev, input, "in");
  DeviceBuffer<std::int64_t> out(dev, input.size(), "out");
  const auto split = device_partition(dev, in, out, pred);
  std::vector<std::int64_t> sel, rej;
  for (const auto v : input) (pred(v) ? sel : rej).push_back(v);
  ASSERT_EQ(split, static_cast<std::int64_t>(sel.size()));
  const auto got = out.d2h_vector();
  // Selected: stable at the front.  Rejected: tail inward, reversed (CUB
  // DevicePartition semantics).
  for (std::size_t i = 0; i < sel.size(); ++i) ASSERT_EQ(got[i], sel[i]);
  for (std::size_t i = 0; i < rej.size(); ++i) {
    ASSERT_EQ(got[input.size() - 1 - i], rej[i]);
  }
}

// --- fused dispatch charging and end-to-end guarantees ---

TEST(Fused, ChargeModelTilesOneLaunchAcrossStages) {
  CostLedger ledger;
  Device dev;
  dev.set_ledger(&ledger);
  std::vector<int> data(20000, 1);
  const auto before = dev.kernels_launched();
  dev.launch_fused("fused_demo", [&](Device::Fused& f) {
    f.stage("a", 64, [&](std::int64_t t) -> std::uint64_t {
      std::uint64_t w = 0;
      for (std::size_t i = static_cast<std::size_t>(t); i < data.size();
           i += 64) {
        data[i] += 1;
        ++w;
      }
      return w;
    });
    f.stage_streamed("b", static_cast<std::int64_t>(data.size()), sizeof(int),
                     [&](std::int64_t i) { data[static_cast<std::size_t>(i)] += 1; });
  });
  dev.set_ledger(nullptr);
  // One dispatch, one fault site, one launch-overhead charge.
  EXPECT_EQ(dev.kernels_launched() - before, 1u);
  EXPECT_EQ(ledger.launches_with_prefix("kernel/fused_demo"), 1u);
  // Header + one row per stage, and the header carries the only nonzero
  // launch count while every stage row still carries its memory work.
  const auto& es = ledger.entries();
  ASSERT_EQ(es.size(), 3u);
  EXPECT_EQ(es[0].label, "kernel/fused_demo");
  EXPECT_EQ(es[0].launches, 1u);
  EXPECT_EQ(es[1].label, "kernel/fused_demo/a");
  EXPECT_EQ(es[1].launches, 0u);
  EXPECT_GT(es[1].work_units, 0u);
  EXPECT_EQ(es[2].label, "kernel/fused_demo/b");
  EXPECT_GT(es[2].work_units, 0u);
  // The ledger total tiles exactly into its entries (no hidden charges).
  double sum = 0;
  for (const auto& e : es) sum += e.seconds;
  EXPECT_NEAR(sum, ledger.total_seconds(), 1e-12);
  // Every element of both stages ran.
  for (const auto v : data) ASSERT_EQ(v, 3);
}

TEST(Fused, LookbackChargesSingleElementSweep) {
  // The fused lookback scan must charge ONE coalesced element sweep plus
  // a per-tile descriptor budget — not the blocked scan's two-and-a-bit
  // passes.  Compare modeled memory work between the modes.
  const std::int64_t n = 1 << 20;
  auto work_units = [&](GpuScanMode mode) {
    CostLedger ledger;
    Device dev;
    auto buf = to_device(dev, random_input(n, 9), "b");
    dev.set_ledger(&ledger);
    (void)device_inclusive_scan(dev, buf, "s", mode);
    dev.set_ledger(nullptr);
    std::uint64_t units = 0;
    for (const auto& e : ledger.entries()) units += e.work_units;
    return units;
  };
  const auto blocked = work_units(GpuScanMode::kBlocked);
  const auto lookback = work_units(GpuScanMode::kLookback);
  // Blocked: block_scan sweep + totals + add_offsets sweep ~= 2 sweeps.
  // Lookback: 1 sweep + 4 units per tile (256 tiles at this size).
  EXPECT_LT(lookback, blocked * 2 / 3);
  EXPECT_GE(lookback, static_cast<std::uint64_t>(n) * 8 / 128);
}

struct FusedSystem {
  const char* name;
  std::unique_ptr<Partitioner> (*make)();
  std::uint64_t fnv;  ///< test_thread_pool.cpp's pinned deterministic FNV
};

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

class FusedDeterminism : public ::testing::TestWithParam<FusedSystem> {};

// Both dispatch strategies must produce BYTE-IDENTICAL partitions — the
// fusion reorders charging and launch boundaries, never arithmetic.  The
// pinned FNVs are the same golden constants the blocked-era determinism
// gate used, proving the default flip changed nothing observable.
TEST_P(FusedDeterminism, BothScanModesMatchGoldenPartition) {
  const auto& gold = GetParam();
  const CsrGraph g = make_paper_graph("delaunay", 1.0 / 256.0, 7);
  const auto sys = gold.make();
  std::vector<part_t> where[2];
  for (const auto mode : {GpuScanMode::kBlocked, GpuScanMode::kLookback}) {
    PartitionOptions opts;
    opts.k = 8;
    opts.seed = 7;
    opts.threads = 1;
    opts.ranks = 1;
    opts.gpu_host_workers = 1;
    opts.gpu_cpu_threshold = 1024;
    opts.gpu_scan = mode;
    const auto r = sys->run(g, opts);
    EXPECT_EQ(fnv1a(r.partition.where.data(),
                    r.partition.where.size() * sizeof(part_t)),
              gold.fnv)
        << gold.name << " drifted under "
        << (mode == GpuScanMode::kBlocked ? "blocked" : "lookback");
    where[mode == GpuScanMode::kLookback] = r.partition.where;
  }
  ASSERT_EQ(where[0], where[1]) << gold.name;
}

INSTANTIATE_TEST_SUITE_P(
    FusedModes, FusedDeterminism,
    ::testing::Values(
        FusedSystem{"metis", &make_serial_partitioner,
                    16254912780744818177ULL},
        FusedSystem{"parmetis", &make_par_partitioner,
                    3681740895285960291ULL},
        FusedSystem{"mt_metis", &make_mt_partitioner,
                    7355817695509169360ULL},
        FusedSystem{"gp_metis", &make_hybrid_partitioner,
                    5153263865161350000ULL}),
    [](const ::testing::TestParamInfo<FusedSystem>& info) {
      return info.param.name;
    });

// The point of the whole exercise: the fused pipelines collapse the
// dispatch count.  Same graph, same options, both modes — the lookback
// run must launch at most half the blocked run's kernels (in practice
// it is ~3-4x fewer; the gate is loose so graph drift cannot flake it).
TEST(Fused, KernelCountCollapses) {
  const CsrGraph g = make_paper_graph("delaunay", 1.0 / 256.0, 7);
  const auto sys = make_hybrid_partitioner();
  std::uint64_t kernels[2] = {0, 0};
  for (const auto mode : {GpuScanMode::kBlocked, GpuScanMode::kLookback}) {
    PartitionOptions opts;
    opts.k = 8;
    opts.seed = 7;
    opts.gpu_cpu_threshold = 1024;
    opts.gpu_scan = mode;
    const auto r = sys->run(g, opts);
    kernels[mode == GpuScanMode::kLookback] = r.exec.kernels_launched;
  }
  EXPECT_GT(kernels[0], 0u);
  EXPECT_LE(kernels[1] * 2, kernels[0])
      << "lookback " << kernels[1] << " vs blocked " << kernels[0];
}

}  // namespace
}  // namespace gp
