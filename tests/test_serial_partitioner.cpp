// Tests for src/serial: HEM matching, GGGP, FM, recursive bisection,
// k-way refinement, and the full multilevel driver.
#include <gtest/gtest.h>

#include "core/matching.hpp"
#include "core/partitioner.hpp"
#include "gen/generators.hpp"
#include "serial/bisection.hpp"
#include "serial/hem_matching.hpp"
#include "serial/kway_refine.hpp"
#include "serial/metis_partitioner.hpp"
#include "serial/rb_partition.hpp"

namespace gp {
namespace {

TEST(HemMatching, ValidInvolutionOnGrid) {
  const auto g = grid2d_graph(20, 20);
  Rng rng(1);
  const auto m = hem_match_serial(g, rng);
  EXPECT_TRUE(validate_match(m.match).empty());
  EXPECT_TRUE(validate_cmap(m.match, m.cmap, m.n_coarse).empty());
}

TEST(HemMatching, PrefersHeavyEdges) {
  // Path with one heavy edge: 0 -1- 1 -9- 2 -1- 3, visited 1 first.
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 9);
  b.add_edge(2, 3, 1);
  const auto g = b.build();
  const auto m = hem_match_serial_ordered(g, {1, 0, 2, 3});
  // Vertex 1's heaviest neighbour is 2: HEM takes the w=9 edge.
  EXPECT_EQ(m.match[1], 2);
  EXPECT_EQ(m.match[2], 1);
  // The leftovers self- or pair-match validly.
  EXPECT_TRUE(validate_match(m.match).empty());
}

TEST(HemMatching, OrderedIsDeterministic) {
  const auto g = grid2d_graph(8, 8);
  std::vector<vid_t> order(64);
  for (vid_t v = 0; v < 64; ++v) order[static_cast<std::size_t>(v)] = 63 - v;
  const auto a = hem_match_serial_ordered(g, order);
  const auto b = hem_match_serial_ordered(g, order);
  EXPECT_EQ(a.match, b.match);
  EXPECT_EQ(a.n_coarse, b.n_coarse);
}

TEST(HemMatching, MaximalOnCompleteGraph) {
  // K6: a maximal matching pairs all 6 vertices.
  GraphBuilder b(6);
  for (vid_t u = 0; u < 6; ++u)
    for (vid_t v = u + 1; v < 6; ++v) b.add_edge(u, v);
  Rng rng(3);
  const auto m = hem_match_serial(b.build(), rng);
  for (vid_t v = 0; v < 6; ++v) EXPECT_NE(m.match[static_cast<std::size_t>(v)], v);
}

TEST(HemMatching, HalvesGridSize) {
  const auto g = grid2d_graph(32, 32);
  Rng rng(5);
  const auto m = hem_match_serial(g, rng);
  // Grids match almost perfectly: coarse size close to n/2.
  EXPECT_LT(m.n_coarse, static_cast<vid_t>(0.6 * 1024));
  EXPECT_GE(m.n_coarse, 512);
}

TEST(Gggp, GrowsToTargetWeight) {
  const auto g = grid2d_graph(16, 16);
  Rng rng(2);
  const auto bis = gggp_bisect(g, g.total_vertex_weight() / 2, rng);
  EXPECT_EQ(bis.side.size(), 256u);
  // Weight0 reaches at least the target (it stops after crossing it).
  EXPECT_GE(bis.weight0, 128);
  EXPECT_LE(bis.weight0, 128 + 32);  // overshoot bounded by max vwgt run
  EXPECT_GT(bis.cut, 0);
  EXPECT_EQ(bis.cut, bisection_cut(g, bis.side));
}

TEST(Fm, NeverWorsensCut) {
  const auto g = grid2d_graph(20, 20);
  Rng rng(4);
  auto bis = gggp_bisect(g, g.total_vertex_weight() / 2, rng);
  const wgt_t before = bis.cut;
  auto st = fm_refine_bisection(g, bis.side, 180, 220);
  EXPECT_EQ(st.cut_before, before);
  EXPECT_LE(st.cut_after, before);
  EXPECT_EQ(st.cut_after, bisection_cut(g, bis.side));
}

TEST(Fm, GridOptimalityQuality) {
  // On a 16x16 grid the optimal bisection cut is 16; GGGP+FM should land
  // well under 2x optimal.
  const auto g = grid2d_graph(16, 16);
  wgt_t best = 1 << 30;
  for (std::uint64_t s = 0; s < 4; ++s) {
    Rng rng(s);
    auto bis = gggp_bisect(g, 128, rng);
    fm_refine_bisection(g, bis.side, 120, 136);
    best = std::min(best, bisection_cut(g, bis.side));
  }
  EXPECT_LE(best, 32);
}

TEST(Fm, RespectsBalanceWindow) {
  const auto g = grid2d_graph(12, 12);
  Rng rng(8);
  auto bis = gggp_bisect(g, 72, rng);
  fm_refine_bisection(g, bis.side, 65, 79);
  wgt_t w0 = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    if (bis.side[static_cast<std::size_t>(v)] == 0) w0 += g.vertex_weight(v);
  EXPECT_GE(w0, 65);
  EXPECT_LE(w0, 79);
}

class RbK : public ::testing::TestWithParam<part_t> {};

TEST_P(RbK, ProducesBalancedKParts) {
  const part_t k = GetParam();
  const auto g = grid2d_graph(32, 32);
  Rng rng(1);
  const auto p = recursive_bisection(g, k, 0.05, rng);
  EXPECT_TRUE(validate_partition(g, p).empty());
  // All parts non-empty.
  auto pw = partition_weights(g, p);
  for (const auto w : pw) EXPECT_GT(w, 0);
  // Balance within a generous envelope (tolerance compounds slightly).
  EXPECT_LE(partition_balance(g, p), 1.30);
}

INSTANTIATE_TEST_SUITE_P(Ks, RbK, ::testing::Values(2, 3, 4, 7, 8, 16));

TEST(KwayRefine, ImprovesRandomPartition) {
  const auto g = grid2d_graph(24, 24);
  Partition p;
  p.k = 4;
  p.where.resize(static_cast<std::size_t>(g.num_vertices()));
  Rng rng(6);
  for (auto& w : p.where) w = static_cast<part_t>(rng.next_below(4));
  const wgt_t before = edge_cut(g, p);
  auto st = kway_refine_serial(g, p, 0.10, 12);
  EXPECT_LT(st.cut_after, before);
  EXPECT_EQ(st.cut_after, edge_cut(g, p));
  EXPECT_TRUE(validate_partition(g, p).empty());
}

TEST(KwayRefine, KeepsBalanceInvariant) {
  const auto g = grid2d_graph(24, 24);
  Rng rng(7);
  Partition p = recursive_bisection(g, 8, 0.03, rng);
  const double bal_before = partition_balance(g, p);
  kway_refine_serial(g, p, 0.03, 8);
  const double bal_after = partition_balance(g, p);
  // Refinement may not blow past the *integral* constraint it enforces
  // (max part weight is a ceiling, so slightly looser than eps on small
  // totals); allow it to inherit any pre-existing violation.
  const double ideal = static_cast<double>(g.total_vertex_weight()) / 8.0;
  const double integral_cap =
      static_cast<double>(max_part_weight(g.total_vertex_weight(), 8, 0.03)) /
      ideal;
  EXPECT_LE(bal_after, std::max(integral_cap + 1e-9, bal_before + 1e-9));
}

TEST(KwayRefinePq, ImprovesAndAgreesWithRecount) {
  const auto g = grid2d_graph(24, 24);
  Partition p;
  p.k = 4;
  p.where.resize(static_cast<std::size_t>(g.num_vertices()));
  Rng rng(9);
  for (auto& w : p.where) w = static_cast<part_t>(rng.next_below(4));
  const wgt_t before = edge_cut(g, p);
  auto st = kway_refine_pq(g, p, 0.10, 12);
  EXPECT_LT(st.cut_after, before);
  EXPECT_EQ(st.cut_after, edge_cut(g, p));
  EXPECT_TRUE(validate_partition(g, p).empty());
}

TEST(KwayRefinePq, NotWorseThanScanOrderTypically) {
  // Gain-order processing should match or beat scan order on average.
  wgt_t pq_sum = 0, scan_sum = 0;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    const auto g = delaunay_graph(2000, s);
    Rng rng(s);
    Partition base = recursive_bisection(g, 8, 0.05, rng);
    for (vid_t v = 0; v < g.num_vertices(); v += 17) {
      base.where[static_cast<std::size_t>(v)] = static_cast<part_t>(
          (base.where[static_cast<std::size_t>(v)] + 1) % 8);
    }
    Partition a = base, b = base;
    scan_sum += kway_refine_serial(g, a, 0.05, 8).cut_after;
    pq_sum += kway_refine_pq(g, b, 0.05, 8).cut_after;
  }
  EXPECT_LE(pq_sum, scan_sum + scan_sum / 10);
}

TEST(SerialDriver, PqRefinementOptionEndToEnd) {
  const auto g = delaunay_graph(4000, 4);
  PartitionOptions opts;
  opts.k = 8;
  opts.pq_refinement = true;
  const auto r = SerialMetisPartitioner().run(g, opts);
  EXPECT_TRUE(validate_partition(g, r.partition).empty());
  EXPECT_LE(r.balance, 1.15);
}

TEST(SerialDriver, PartitionsGridK8) {
  const auto g = grid2d_graph(64, 64);
  PartitionOptions opts;
  opts.k = 8;
  const auto r = SerialMetisPartitioner().run(g, opts);
  EXPECT_TRUE(validate_partition(g, r.partition).empty());
  EXPECT_EQ(r.cut, edge_cut(g, r.partition));
  EXPECT_LE(r.balance, 1.12);
  EXPECT_GT(r.coarsen_levels, 0);
  EXPECT_GT(r.modeled_seconds, 0.0);
  // Sanity: near-optimal k=8 grid cut is ~7*64 = 448; stay under 2.5x.
  EXPECT_LT(r.cut, 1100);
}

TEST(SerialDriver, PartitionsDelaunayK16) {
  const auto g = delaunay_graph(4000, 2);
  PartitionOptions opts;
  opts.k = 16;
  const auto r = SerialMetisPartitioner().run(g, opts);
  EXPECT_TRUE(validate_partition(g, r.partition).empty());
  EXPECT_LE(r.balance, 1.15);
  // Every part populated.
  auto pw = partition_weights(g, r.partition);
  for (const auto w : pw) EXPECT_GT(w, 0);
}

TEST(SerialDriver, PhaseBreakdownSumsToTotal) {
  const auto g = grid2d_graph(48, 48);
  PartitionOptions opts;
  opts.k = 4;
  const auto r = SerialMetisPartitioner().run(g, opts);
  EXPECT_NEAR(r.phases.total(), r.modeled_seconds, 1e-9);
}

TEST(SerialDriver, DeterministicForFixedSeed) {
  const auto g = grid2d_graph(32, 32);
  PartitionOptions opts;
  opts.k = 8;
  opts.seed = 77;
  const auto a = SerialMetisPartitioner().run(g, opts);
  const auto b = SerialMetisPartitioner().run(g, opts);
  EXPECT_EQ(a.partition.where, b.partition.where);
  EXPECT_EQ(a.cut, b.cut);
}

TEST(SerialDriver, TinyGraphNoCoarsening) {
  // Graph already below the coarsening target: driver must still work.
  const auto g = grid2d_graph(4, 4);
  PartitionOptions opts;
  opts.k = 2;
  const auto r = SerialMetisPartitioner().run(g, opts);
  EXPECT_TRUE(validate_partition(g, r.partition).empty());
  EXPECT_EQ(r.coarsen_levels, 0);
}

TEST(SerialDriver, FactoryName) {
  EXPECT_EQ(make_serial_partitioner()->name(), "metis");
}

}  // namespace
}  // namespace gp
