// Service engine end to end (DESIGN.md §3.8): admission control with
// machine-readable shed reasons, priority ordering, deadline-to-watchdog
// propagation (valid-but-degraded, never a hang), deterministic
// fault-triggered retries down the degradation ladder, and cooperative
// cancellation that unwinds cleanly out of every driver.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/partition.hpp"
#include "core/partitioner.hpp"
#include "core/report.hpp"
#include "gen/generators.hpp"
#include "mt/mt_partitioner.hpp"
#include "serial/metis_partitioner.hpp"
#include "service/engine.hpp"

namespace gp {
namespace {

PartitionOptions det_opts() {
  PartitionOptions opts;
  opts.k = 4;
  opts.threads = 1;           // bit-deterministic shared-memory phases
  opts.gpu_host_workers = 1;  // bit-deterministic kernels
  opts.seed = 7;
  opts.fault_seed = 17;
  return opts;
}

/// Synchronous engine (workers == 0): nothing runs until run_one(), so
/// every accept/shed/retry decision is a pure function of the submission
/// order — the configuration all determinism tests use.
ServiceConfig sync_cfg() {
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.seed = 42;
  return cfg;
}

// ------------------------------------------------------------ admission

TEST(ServiceAdmission, QueueFullShedsWithMachineReadableReason) {
  const auto g = delaunay_graph(500, 3);
  ServiceConfig cfg = sync_cfg();
  cfg.queue_depth = 2;
  ServiceEngine engine(cfg);

  auto t1 = engine.submit(g, det_opts(), Priority::kNormal, -1, "metis");
  auto t2 = engine.submit(g, det_opts(), Priority::kNormal, -1, "metis");
  auto t3 = engine.submit(g, det_opts(), Priority::kNormal, -1, "metis");

  EXPECT_FALSE(t1->done());
  EXPECT_FALSE(t2->done());
  ASSERT_TRUE(t3->done());  // shed synchronously at submit
  const auto out = t3->wait();
  EXPECT_EQ(out.state, RequestState::kShed);
  EXPECT_EQ(out.shed_class, ShedClass::kQueueFull);
  EXPECT_EQ(out.shed_reason, "queue-full:depth=2:max=2");

  while (engine.run_one()) {
  }
  EXPECT_EQ(t1->wait().state, RequestState::kDone);
  EXPECT_EQ(t2->wait().state, RequestState::kDone);
  const auto s = engine.stats();
  EXPECT_EQ(s.submitted, 3u);
  EXPECT_EQ(s.accepted, 2u);
  EXPECT_EQ(s.shed_queue_full, 1u);
  EXPECT_EQ(s.completed, 2u);
}

TEST(ServiceAdmission, CostBudgetShedsWithBacklogDetail) {
  const auto g = delaunay_graph(2000, 3);
  ServiceConfig cfg = sync_cfg();
  // First request's estimate fits; first + second exceeds the budget.
  const double est = estimate_request_cost(g, det_opts());
  ASSERT_GT(est, 0.0);
  cfg.cost_budget_seconds = est * 1.5;
  ServiceEngine engine(cfg);

  auto t1 = engine.submit(g, det_opts(), Priority::kNormal, -1, "metis");
  auto t2 = engine.submit(g, det_opts(), Priority::kNormal, -1, "metis");
  EXPECT_FALSE(t1->done());
  ASSERT_TRUE(t2->done());
  const auto out = t2->wait();
  EXPECT_EQ(out.state, RequestState::kShed);
  EXPECT_EQ(out.shed_class, ShedClass::kCostBudget);
  EXPECT_EQ(out.shed_reason.rfind("cost-budget:backlog=", 0), 0u)
      << out.shed_reason;
  EXPECT_NE(out.shed_reason.find(":est="), std::string::npos);
  EXPECT_NE(out.shed_reason.find(":max="), std::string::npos);

  // Popping the first request frees the backlog: admission recovers.
  EXPECT_TRUE(engine.run_one());
  auto t3 = engine.submit(g, det_opts(), Priority::kNormal, -1, "metis");
  EXPECT_FALSE(t3->done());
  while (engine.run_one()) {
  }
  EXPECT_EQ(t3->wait().state, RequestState::kDone);
}

TEST(ServiceAdmission, PriorityClassesServeInteractiveFirst) {
  const auto g = delaunay_graph(500, 3);
  ServiceEngine engine(sync_cfg());
  auto batch = engine.submit(g, det_opts(), Priority::kBatch, -1, "metis");
  auto normal = engine.submit(g, det_opts(), Priority::kNormal, -1, "metis");
  auto inter =
      engine.submit(g, det_opts(), Priority::kInteractive, -1, "metis");

  ASSERT_TRUE(engine.run_one());
  EXPECT_TRUE(inter->done());
  EXPECT_FALSE(normal->done());
  ASSERT_TRUE(engine.run_one());
  EXPECT_TRUE(normal->done());
  EXPECT_FALSE(batch->done());
  ASSERT_TRUE(engine.run_one());
  EXPECT_TRUE(batch->done());
  EXPECT_FALSE(engine.run_one());
}

TEST(ServiceAdmission, ShutdownShedsQueuedRequests) {
  const auto g = delaunay_graph(500, 3);
  auto engine = std::make_unique<ServiceEngine>(sync_cfg());
  auto t = engine->submit(g, det_opts(), Priority::kNormal, -1, "metis");
  engine->shutdown(/*drain=*/false);
  ASSERT_TRUE(t->done());
  const auto out = t->wait();
  EXPECT_EQ(out.state, RequestState::kShed);
  EXPECT_EQ(out.shed_class, ShedClass::kShutdown);
  EXPECT_EQ(out.shed_reason, "shutdown");
  // Post-shutdown submissions shed immediately too.
  auto late = engine->submit(g, det_opts(), Priority::kNormal, -1, "metis");
  EXPECT_EQ(late->wait().shed_class, ShedClass::kShutdown);
}

// ------------------------------------------------------- retry + ladder

TEST(ServiceRetry, FaultDegradedRunRetriesDownLadderToHealthy) {
  const auto g = delaunay_graph(4000, 3);
  PartitionOptions opts = det_opts();
  opts.audit_level = AuditLevel::kPhase;
  opts.fault_spec = "cmap@0";  // planted corruption -> degraded attempt

  ServiceEngine engine(sync_cfg());
  auto t = engine.submit(g, opts, Priority::kNormal, -1, "mt-metis");
  ASSERT_TRUE(engine.run_one());
  const auto out = t->wait();

  ASSERT_EQ(out.state, RequestState::kDone);
  EXPECT_TRUE(
      validate_partition(g, out.result.partition, out.result.cut,
                         out.result.balance)
          .empty());
  // Attempt 1 (mt-metis, faults live) self-heals but reports degraded;
  // the engine escalates to the terminal rung (metis, faults cleared),
  // which must come back healthy.
  ASSERT_EQ(out.attempts, 2);
  ASSERT_EQ(out.attempt_trail.size(), 2u);
  EXPECT_EQ(out.attempt_trail[0], "mt-metis:degraded");
  EXPECT_EQ(out.attempt_trail[1], "metis:ok");
  EXPECT_FALSE(out.result.health.degraded);
  EXPECT_GT(out.backoff_seconds, 0.0);
  EXPECT_EQ(engine.stats().retries, 1u);
  EXPECT_EQ(engine.stats().completed_degraded, 0u);
}

TEST(ServiceRetry, TraceIsByteIdenticalAcrossEngineReruns) {
  const auto g = delaunay_graph(4000, 3);
  PartitionOptions opts = det_opts();
  opts.audit_level = AuditLevel::kPhase;
  opts.fault_spec = "cmap@0";

  auto run_once = [&]() {
    ServiceEngine engine(sync_cfg());
    auto t = engine.submit(g, opts, Priority::kNormal, -1, "mt-metis");
    while (engine.run_one()) {
    }
    return t->wait();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.state, RequestState::kDone);
  ASSERT_EQ(b.state, RequestState::kDone);
  EXPECT_EQ(a.result.partition.where, b.result.partition.where);
  EXPECT_EQ(a.attempt_trail, b.attempt_trail);
  EXPECT_EQ(a.attempts, b.attempts);
  // Deterministic jitter: the modeled backoff replays exactly.
  EXPECT_EQ(a.backoff_seconds, b.backoff_seconds);
}

TEST(ServiceRetry, WatchdogOnlyDegradationDoesNotRetry) {
  const auto g = delaunay_graph(4000, 3);
  PartitionOptions opts = det_opts();
  opts.time_budget_seconds = 1e-9;  // watchdog sheds all refinement

  ServiceEngine engine(sync_cfg());
  auto t = engine.submit(g, opts, Priority::kNormal, -1, "metis");
  ASSERT_TRUE(engine.run_one());
  const auto out = t->wait();
  ASSERT_EQ(out.state, RequestState::kDone);
  EXPECT_TRUE(out.result.health.degraded);
  // Degraded, but not fault-degraded: retrying a time shed would just
  // miss harder, so exactly one attempt runs.
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(engine.stats().retries, 0u);
}

TEST(ServiceRetry, BackoffIsDeterministicAndMonotonicUnderNoJitter) {
  RetryPolicy p;
  p.jitter = 0.0;
  EXPECT_DOUBLE_EQ(p.backoff_seconds(1, 1, 9), p.base_backoff_seconds);
  EXPECT_DOUBLE_EQ(p.backoff_seconds(1, 2, 9),
                   p.base_backoff_seconds * p.backoff_multiplier);
  p.jitter = 0.5;
  const double d1 = p.backoff_seconds(5, 1, 9);
  EXPECT_DOUBLE_EQ(d1, p.backoff_seconds(5, 1, 9));  // pure function
  EXPECT_NE(d1, p.backoff_seconds(6, 1, 9));         // id-sensitive
  EXPECT_NE(d1, p.backoff_seconds(5, 1, 10));        // seed-sensitive
  // Jitter stays inside [1 - j/2, 1 + j/2] of the base.
  EXPECT_GE(d1, p.base_backoff_seconds * 0.75);
  EXPECT_LE(d1, p.base_backoff_seconds * 1.25);
}

TEST(ServiceRetry, LadderBottomsOutAtFaultFreeSerial) {
  const auto gp_ladder = degradation_ladder("gp-metis");
  ASSERT_EQ(gp_ladder.size(), 3u);
  EXPECT_EQ(gp_ladder[0].system, "gp-metis");
  EXPECT_FALSE(gp_ladder[0].clear_faults);
  EXPECT_EQ(gp_ladder[1].system, "mt-metis");
  EXPECT_EQ(gp_ladder[2].system, "metis");
  EXPECT_TRUE(gp_ladder[2].clear_faults);
  // Requesting a ladder rung itself still terminates in clean serial.
  const auto serial_ladder = degradation_ladder("metis");
  ASSERT_EQ(serial_ladder.size(), 2u);
  EXPECT_TRUE(serial_ladder.back().clear_faults);
}

// ------------------------------------------------------------ deadlines

TEST(ServiceDeadline, ExpiredDeadlineStillReturnsValidPartition) {
  const auto g = delaunay_graph(4000, 3);
  ServiceConfig cfg = sync_cfg();
  ServiceEngine engine(cfg);
  // A deadline far smaller than any run: expired by dequeue time, so the
  // run executes under an epsilon watchdog budget — minimal work, but a
  // structurally valid best-so-far partition (never a hang, never empty).
  auto t = engine.submit(g, det_opts(), Priority::kNormal, 1e-7, "metis");
  ASSERT_TRUE(engine.run_one());
  const auto out = t->wait();
  ASSERT_EQ(out.state, RequestState::kDone);
  EXPECT_TRUE(out.deadline_missed);
  EXPECT_TRUE(out.result.health.degraded);
  EXPECT_TRUE(
      validate_partition(g, out.result.partition, out.result.cut,
                         out.result.balance)
          .empty());
  EXPECT_EQ(engine.stats().deadline_misses, 1u);
}

TEST(ServiceDeadline, GenerousDeadlineCompletesCleanly) {
  const auto g = delaunay_graph(2000, 3);
  ServiceEngine engine(sync_cfg());
  auto t = engine.submit(g, det_opts(), Priority::kNormal, 3600.0, "metis");
  ASSERT_TRUE(engine.run_one());
  const auto out = t->wait();
  ASSERT_EQ(out.state, RequestState::kDone);
  EXPECT_FALSE(out.deadline_missed);
  EXPECT_FALSE(out.result.health.degraded);
  EXPECT_EQ(engine.stats().deadline_misses, 0u);
}

// --------------------------------------------------------- cancellation

TEST(ServiceCancel, CancelledBeforeExecutionFinalizesAtDequeue) {
  const auto g = delaunay_graph(500, 3);
  ServiceEngine engine(sync_cfg());
  auto t = engine.submit(g, det_opts(), Priority::kNormal, -1, "metis");
  t->cancel();
  ASSERT_TRUE(engine.run_one());
  const auto out = t->wait();
  EXPECT_EQ(out.state, RequestState::kCancelled);
  EXPECT_EQ(out.attempts, 0);
  EXPECT_EQ(engine.stats().cancelled, 1u);
}

TEST(ServiceCancel, MidRunCancellationUnwindsDriversCleanly) {
  // A pre-cancelled token makes the first phase-boundary check throw —
  // the deterministic way to prove the unwind path: CancelledError (not
  // a hang, not a swallowed state), pool and device scratch all released
  // by RAII on the way out.
  const auto g = delaunay_graph(4000, 3);
  PartitionOptions opts = det_opts();
  CancelToken tok;
  tok.cancel();
  opts.cancel = &tok;
  EXPECT_THROW((void)SerialMetisPartitioner{}.run(g, opts), CancelledError);
  EXPECT_THROW((void)MtMetisPartitioner{}.run(g, opts), CancelledError);
  EXPECT_THROW((void)make_hybrid_partitioner()->run(g, opts),
               CancelledError);
  EXPECT_THROW((void)make_par_partitioner()->run(g, opts), CancelledError);
  EXPECT_THROW((void)make_multi_gpu_partitioner()->run(g, opts),
               CancelledError);
  // The token is reusable once reset: the same options complete.
  tok.reset();
  const auto r = SerialMetisPartitioner{}.run(g, opts);
  EXPECT_TRUE(validate_partition(g, r.partition, r.cut, r.balance).empty());
}

TEST(ServiceCancel, CancelDuringBackoffStopsTheRetryLadder) {
  // A request cancelled mid-retry-ladder must unwind without firing
  // further attempts.  Attempt 1 degrades under injected corruption, the
  // worker starts a long real backoff sleep (retries counter visibly
  // bumped first), the caller cancels during the sleep, and the ladder
  // stops at the pre-attempt cancellation check.
  const auto g = delaunay_graph(4000, 3);
  PartitionOptions opts = det_opts();
  opts.audit_level = AuditLevel::kPhase;
  opts.fault_spec = "cmap:p=1";  // every fault-live attempt degrades

  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.seed = 42;
  cfg.sleep_on_backoff = true;
  cfg.retry.base_backoff_seconds = 2.0;
  cfg.retry.max_backoff_seconds = 2.0;
  cfg.retry.backoff_multiplier = 1.0;
  cfg.retry.jitter = 0.0;

  ServiceEngine engine(cfg);
  auto t = engine.submit(g, opts, Priority::kNormal, -1, "mt-metis");
  ASSERT_NE(t, nullptr);
  // The retry counter is incremented before the backoff sleep starts,
  // so polling it places the cancel inside the sleep window.
  while (engine.stats().retries < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  t->cancel();
  const auto out = t->wait();
  engine.shutdown(/*drain=*/true);

  EXPECT_EQ(out.state, RequestState::kCancelled);
  EXPECT_EQ(out.attempts, 1);  // the second rung never fired
  ASSERT_EQ(out.attempt_trail.size(), 2u);
  EXPECT_EQ(out.attempt_trail[0], "mt-metis:degraded");
  EXPECT_EQ(out.attempt_trail[1], "cancelled(between attempts)");
  EXPECT_EQ(out.leaked_blocks, 0);
  EXPECT_EQ(engine.stats().leaked_blocks, 0u);
  EXPECT_EQ(engine.stats().cancelled, 1u);
}

// ---------------------------------------------------- config + plumbing

TEST(ServiceConfigValidation, RejectsNonsense) {
  auto bad = [](auto mutate) {
    ServiceConfig cfg;
    mutate(cfg);
    EXPECT_THROW(validate_service_config(cfg), std::invalid_argument);
  };
  bad([](ServiceConfig& c) { c.workers = -1; });
  bad([](ServiceConfig& c) { c.queue_depth = 0; });
  bad([](ServiceConfig& c) { c.cost_budget_seconds = 0.0; });
  bad([](ServiceConfig& c) { c.retry.max_attempts = 0; });
  bad([](ServiceConfig& c) { c.retry.backoff_multiplier = 0.5; });
  bad([](ServiceConfig& c) { c.retry.base_backoff_seconds = -1.0; });
  bad([](ServiceConfig& c) { c.retry.jitter = 1.5; });
  bad([](ServiceConfig& c) { c.default_deadline_seconds = -2.0; });
  EXPECT_NO_THROW(validate_service_config(ServiceConfig{}));
  EXPECT_THROW((void)make_partitioner_by_name("frobnicator"),
               std::invalid_argument);
}

TEST(ServiceThreaded, WorkerPoolDrainsEveryRequest) {
  const auto g = delaunay_graph(1000, 3);
  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.queue_depth = 64;
  ServiceEngine engine(cfg);
  std::vector<std::shared_ptr<RequestTicket>> tickets;
  for (int i = 0; i < 12; ++i) {
    tickets.push_back(
        engine.submit(g, det_opts(), Priority::kNormal, -1, "metis"));
  }
  for (auto& t : tickets) {
    const auto out = t->wait();
    ASSERT_EQ(out.state, RequestState::kDone);
    EXPECT_TRUE(
        validate_partition(g, out.result.partition, out.result.cut,
                           out.result.balance)
            .empty());
  }
  engine.shutdown(/*drain=*/true);
  const auto s = engine.stats();
  EXPECT_EQ(s.completed, 12u);
  EXPECT_EQ(s.shed_total(), 0u);
}

TEST(ServiceStatsFormat, RendersBothLines) {
  ServiceStats s;
  s.submitted = 10;
  s.accepted = 7;
  s.shed_queue_full = 3;
  s.completed = 7;
  s.leaked_blocks = 2;
  const std::string txt = format_service_stats(s);
  EXPECT_NE(txt.find("submitted 10"), std::string::npos);
  EXPECT_NE(txt.find("queue-full 3"), std::string::npos);
  EXPECT_NE(txt.find("completed 7"), std::string::npos);
  EXPECT_NE(txt.find("leaked blocks 2"), std::string::npos);
}

TEST(ServiceStats, PoolAccountingIsZeroAfterNormalRuns) {
  const auto g = delaunay_graph(4000, 3);
  PartitionOptions opts = det_opts();
  ServiceEngine engine(sync_cfg());
  auto a = engine.submit(g, opts, Priority::kNormal, -1, "gp-metis");
  auto b = engine.submit(g, opts, Priority::kNormal, -1, "gp-metis-multi");
  while (engine.run_one()) {
  }
  EXPECT_EQ(a->wait().leaked_blocks, 0);
  EXPECT_EQ(b->wait().leaked_blocks, 0);
  EXPECT_EQ(engine.stats().leaked_blocks, 0u);
}

}  // namespace
}  // namespace gp
