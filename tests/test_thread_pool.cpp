// Tests for the pool execution engine (DESIGN.md §3.1): dynamic
// scheduling correctness under skewed work, barrier stress across many
// back-to-back generations, single-executor chunk-order determinism, and
// the bit-identical deterministic-partition regression gate.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/partitioner.hpp"
#include "gen/generators.hpp"
#include "util/thread_pool.hpp"

namespace gp {
namespace {

TEST(ThreadPoolDynamic, EachIndexExactlyOnceUnderSkewedWork) {
  ThreadPool pool(8);
  const std::int64_t n = 20000;
  std::vector<int> hits(static_cast<std::size_t>(n), 0);
  // Skew: the first chunk's indices carry almost all the work, so a
  // static block schedule would serialize on executor 0.  Dynamic
  // chunks must still cover every index exactly once.
  std::atomic<std::uint64_t> sink{0};
  pool.parallel_for_dynamic(n, 256, [&](int, std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      if (i < 256) {
        std::uint64_t x = static_cast<std::uint64_t>(i) + 1;
        for (int it = 0; it < 20000; ++it) x = x * 6364136223846793005ULL + 1;
        sink += x;
      }
      std::atomic_ref<int>(hits[static_cast<std::size_t>(i)]).fetch_add(1);
    }
  });
  for (const int h : hits) ASSERT_EQ(h, 1);
}

TEST(ThreadPoolDynamic, GrainNotDividingNCoversTail) {
  ThreadPool pool(3);
  const std::int64_t n = 1000;  // 1000 = 7 * 142 + 6: ragged tail chunk
  std::vector<int> hits(static_cast<std::size_t>(n), 0);
  pool.parallel_for_dynamic(n, 142, [&](int t, std::int64_t b, std::int64_t e) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, pool.size());
    EXPECT_LT(b, e);
    EXPECT_LE(e, n);
    for (std::int64_t i = b; i < e; ++i) {
      std::atomic_ref<int>(hits[static_cast<std::size_t>(i)]).fetch_add(1);
    }
  });
  for (const int h : hits) ASSERT_EQ(h, 1);
}

TEST(ThreadPoolDynamic, SingleExecutorChunksArriveInAscendingOrder) {
  // With one executor the atomic chunk counter degenerates to a serial
  // ascending sweep — the property the deterministic (threads=1) runs
  // rely on for bit-identical results.
  ThreadPool pool(1);
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  pool.parallel_for_dynamic(1000, 128,
                            [&](int t, std::int64_t b, std::int64_t e) {
                              EXPECT_EQ(t, 0);
                              chunks.emplace_back(b, e);
                            });
  ASSERT_EQ(chunks.size(), 8u);
  std::int64_t expect_begin = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b, expect_begin);
    expect_begin = e;
  }
  EXPECT_EQ(expect_begin, 1000);
}

TEST(ThreadPoolDynamic, GrainDefaultIsClamped) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.dynamic_grain(10), 64);              // lower clamp
  EXPECT_EQ(pool.dynamic_grain(1 << 30), 65536);      // upper clamp
  EXPECT_EQ(pool.dynamic_grain(640000), 10000);       // n / (nt * 16)
}

TEST(ThreadPoolBarrier, StressManyBackToBackGenerations) {
  // Hammer the generation-counter barrier: many small jobs dispatched
  // back to back, alternating primitive and slot count, so workers keep
  // racing between spin, park, and wake.
  ThreadPool pool(7);
  const int rounds = 400;
  std::vector<std::atomic<int>> slot_runs(7);
  for (auto& s : slot_runs) s = 0;
  std::int64_t blocked_total = 0;
  for (int r = 0; r < rounds; ++r) {
    pool.run_on_all(
        [&](int t) { slot_runs[static_cast<std::size_t>(t)]++; });
    // Varying n exercises dispatches with fewer slots than workers
    // (n < size() dispatches only n slots).
    const std::int64_t n = 1 + (r % 13);
    std::atomic<std::int64_t> sum{0};
    pool.parallel_for_blocked(n, [&](int, std::int64_t b, std::int64_t e) {
      sum += e - b;
    });
    blocked_total += sum.load();
  }
  for (const auto& s : slot_runs) EXPECT_EQ(s.load(), rounds);
  std::int64_t expect = 0;
  for (int r = 0; r < rounds; ++r) expect += 1 + (r % 13);
  EXPECT_EQ(blocked_total, expect);
}

TEST(ThreadPoolBarrier, DispatchCountSeesEveryJob) {
  ThreadPool pool(4);
  const auto before = pool.dispatch_count();
  pool.run_on_all([](int) {});
  pool.parallel_for_blocked(100, [](int, std::int64_t, std::int64_t) {});
  pool.parallel_for_dynamic(100, 10, [](int, std::int64_t, std::int64_t) {});
  pool.parallel_for_blocked(1, [](int, std::int64_t, std::int64_t) {});
  EXPECT_EQ(pool.dispatch_count() - before, 4u);
  // Empty loops dispatch nothing.
  pool.parallel_for_blocked(0, [](int, std::int64_t, std::int64_t) {});
  pool.parallel_for_dynamic(0, 10, [](int, std::int64_t, std::int64_t) {});
  EXPECT_EQ(pool.dispatch_count() - before, 4u);
}

// --- exception safety and cancellation at the pool boundary ---
//
// A task that throws must unwind out of the *dispatching* call, not out
// of a worker thread (std::terminate), and must not skip the barrier
// arrival (a wedged dispatcher).  The regression mode before the fix was
// exactly that wedge: the second parallel_for below would never return.

TEST(ThreadPoolExceptions, ThrowingTaskPropagatesAndPoolSurvives) {
  ThreadPool pool(8);
  const std::int64_t n = 10000;
  EXPECT_THROW(
      pool.parallel_for_blocked(n,
                                [&](int, std::int64_t b, std::int64_t e) {
                                  for (std::int64_t i = b; i < e; ++i) {
                                    if (i == 4242) {
                                      throw std::runtime_error("boom");
                                    }
                                  }
                                }),
      std::runtime_error);
  // The pool must come back fully usable: every index covered once.
  std::vector<int> hits(static_cast<std::size_t>(n), 0);
  pool.parallel_for_blocked(n, [&](int, std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      std::atomic_ref<int>(hits[static_cast<std::size_t>(i)]).fetch_add(1);
    }
  });
  for (const int h : hits) ASSERT_EQ(h, 1);
}

TEST(ThreadPoolExceptions, EverySlotThrowingStillJoinsAndRethrowsOne) {
  ThreadPool pool(8);
  for (int round = 0; round < 50; ++round) {
    try {
      pool.run_on_all([](int t) {
        throw std::runtime_error("slot " + std::to_string(t));
      });
      FAIL() << "expected a slot exception to propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()).rfind("slot ", 0), 0u);
    }
  }
  // Error state must not leak into the next healthy job.
  std::atomic<int> ran{0};
  pool.run_on_all([&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolExceptions, SingleSlotInlinePathPropagates) {
  ThreadPool pool(4);
  // n == 1 runs inline on the caller with no barrier; the exception must
  // still surface and leave the pool healthy.
  EXPECT_THROW(pool.parallel_for_blocked(
                   1, [](int, std::int64_t, std::int64_t) {
                     throw std::runtime_error("inline");
                   }),
               std::runtime_error);
  std::atomic<int> ran{0};
  pool.parallel_for_blocked(
      100, [&](int, std::int64_t b, std::int64_t e) {
        ran.fetch_add(static_cast<int>(e - b));
      });
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolCancel, CancelledTokenRejectsDispatchUntilReset) {
  ThreadPool pool(4);
  CancelToken tok;
  pool.set_cancel_token(&tok);
  tok.cancel();
  // Job-atomic contract: cancellation lands *between* jobs, so a
  // dispatch on a cancelled token throws before any slot runs.
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for_blocked(
                   100,
                   [&](int, std::int64_t b, std::int64_t e) {
                     ran.fetch_add(static_cast<int>(e - b));
                   }),
               CancelledError);
  EXPECT_EQ(ran.load(), 0);
  tok.reset();
  pool.parallel_for_blocked(100, [&](int, std::int64_t b, std::int64_t e) {
    ran.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(ran.load(), 100);
  pool.set_cancel_token(nullptr);
}

// --- deterministic-partition regression gate ---
//
// Every partitioner in the deterministic configuration (threads=1,
// ranks=1, gpu_host_workers=1) must produce BIT-IDENTICAL partitions
// run over run, and the exact partitions pinned below.  The golden FNV
// values match the "determinism" section of BENCH_e2e.json (same graph,
// seed, and options).  A legitimate algorithm change may move them —
// update the constants consciously, together with the bench baseline.

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

struct DetGolden {
  const char* system;
  std::unique_ptr<Partitioner> (*make)();
  std::uint64_t fnv;
};

class DeterminismRegression : public ::testing::TestWithParam<DetGolden> {};

TEST_P(DeterminismRegression, SingleThreadConfigIsBitIdentical) {
  const auto& gold = GetParam();
  const CsrGraph g = make_paper_graph("delaunay", 1.0 / 256.0, 7);
  PartitionOptions opts;
  opts.k = 8;
  opts.seed = 7;
  opts.threads = 1;
  opts.ranks = 1;
  opts.gpu_host_workers = 1;
  opts.gpu_cpu_threshold = 1024;
  const auto sys = gold.make();
  const auto r1 = sys->run(g, opts);
  const auto r2 = sys->run(g, opts);
  // Byte-compare the partition vectors across in-process runs.
  ASSERT_EQ(r1.partition.where, r2.partition.where);
  EXPECT_EQ(fnv1a(r1.partition.where.data(),
                  r1.partition.where.size() * sizeof(part_t)),
            gold.fnv)
      << "deterministic partition drifted for " << gold.system;
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, DeterminismRegression,
    ::testing::Values(
        DetGolden{"metis", &make_serial_partitioner,
                  16254912780744818177ULL},
        DetGolden{"parmetis", &make_par_partitioner, 3681740895285960291ULL},
        DetGolden{"mt-metis", &make_mt_partitioner, 7355817695509169360ULL},
        DetGolden{"gp-metis", &make_hybrid_partitioner,
                  5153263865161350000ULL}),
    [](const ::testing::TestParamInfo<DetGolden>& info) {
      std::string s = info.param.system;
      for (auto& c : s) {
        if (c == '-') c = '_';
      }
      return s;
    });

}  // namespace
}  // namespace gp
