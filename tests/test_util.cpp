// Unit tests for src/util: RNG, thread pool, prefix sums, stats.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "util/prefix_sum.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace gp {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c;
  }
  Rng d(43);
  bool any_diff = false;
  Rng e(42);
  for (int i = 0; i < 100; ++i) {
    if (d.next() != e.next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(r.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ThreadPool, BlockRangeCoversExactly) {
  for (std::int64_t n : {0, 1, 7, 8, 9, 100, 1023}) {
    for (int nt : {1, 2, 3, 8, 16}) {
      std::int64_t covered = 0;
      std::int64_t prev_end = 0;
      for (int t = 0; t < nt; ++t) {
        auto [b, e] = ThreadPool::block_range(n, nt, t);
        EXPECT_EQ(b, prev_end);
        EXPECT_LE(b, e);
        covered += e - b;
        prev_end = e;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(ThreadPool, RunOnAllRunsEveryWorkerOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(8);
  for (auto& h : hits) h = 0;
  pool.run_on_all([&](int t) { hits[static_cast<std::size_t>(t)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Second generation works too.
  pool.run_on_all([&](int t) { hits[static_cast<std::size_t>(t)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 2);
}

TEST(ThreadPool, ParallelForBlockedSums) {
  ThreadPool pool(6);
  const std::int64_t n = 100000;
  std::vector<int> data(static_cast<std::size_t>(n), 1);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for_blocked(n, [&](int, std::int64_t b, std::int64_t e) {
    std::int64_t local = 0;
    for (std::int64_t i = b; i < e; ++i) local += data[static_cast<std::size_t>(i)];
    sum += local;
  });
  EXPECT_EQ(sum.load(), n);
}

class ScanSizes : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ScanSizes, InclusiveParallelMatchesSerial) {
  const auto n = GetParam();
  Rng r(static_cast<std::uint64_t>(n) + 1);
  std::vector<std::int64_t> a(static_cast<std::size_t>(n));
  for (auto& x : a) x = static_cast<std::int64_t>(r.next_below(100));
  auto b = a;
  inclusive_scan_serial(a);
  ThreadPool pool(4);
  inclusive_scan_parallel(pool, b);
  EXPECT_EQ(a, b);
}

TEST_P(ScanSizes, ExclusiveParallelMatchesSerial) {
  const auto n = GetParam();
  Rng r(static_cast<std::uint64_t>(n) + 99);
  std::vector<std::int64_t> a(static_cast<std::size_t>(n));
  for (auto& x : a) x = static_cast<std::int64_t>(r.next_below(50));
  auto b = a;
  const auto ta = exclusive_scan_serial(a);
  ThreadPool pool(4);
  const auto tb = exclusive_scan_parallel(pool, b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ta, tb);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSizes,
                         ::testing::Values(0, 1, 2, 3, 17, 4095, 4096, 4097,
                                           100000));

TEST(Stats, SummaryBasics) {
  const auto s = summarize(std::vector<int>{3, 1, 2, 4});
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_EQ(s.count, 4u);
}

TEST(Stats, SummaryEmptyAndSingle) {
  const auto e = summarize(std::vector<int>{});
  EXPECT_EQ(e.count, 0u);
  const auto one = summarize(std::vector<int>{5});
  EXPECT_DOUBLE_EQ(one.median, 5);
  EXPECT_DOUBLE_EQ(one.stddev, 0);
}

TEST(Stats, ImbalanceFactor) {
  EXPECT_DOUBLE_EQ(imbalance_factor(std::vector<int>{5, 5, 5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(imbalance_factor(std::vector<int>{10, 0, 0, 0}), 4.0);
  EXPECT_DOUBLE_EQ(imbalance_factor(std::vector<int>{}), 1.0);
}

}  // namespace
}  // namespace gp
