// chaos — fault-space fuzzing CLI for the partitioner fleet
// (DESIGN.md §3.10).
//
// Modes:
//   (default)          seeded campaign: --specs randomized fault specs per
//                      system, every run checked against the chaos oracle;
//                      violations are shrunk to minimal reproducers.
//   --replay SPEC      run one spec against one --system and print the
//                      verdict (paste a reproducer here).
//   --plant SPEC       plant a spec into the campaign's spec stream as
//                      index 0 (oracle-violation drills).
//   --selftest-shrink  shrinker golden test on a synthetic oracle; no
//                      partitioner runs.
//   --soak N           push N requests with per-request randomized specs
//                      through the service engine and gate on zero hangs,
//                      zero invalid results, zero failures, zero leaks.
//
// Exit codes: 0 = clean, 1 = oracle violations / gate failure, 2 = usage.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/shrink.hpp"
#include "core/partition.hpp"
#include "gpu/device.hpp"
#include "service/engine.hpp"
#include "util/fault.hpp"

namespace {

using namespace gp;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  campaign:  --seed N --specs N --max-clauses N --systems a,b,..|all\n"
      "             --graph delaunay|grid|road|bubble --n N --k N\n"
      "             --audit off|phase|paranoid --threads N\n"
      "             --ledger PATH --verbose\n"
      "  replay:    --replay SPEC --system NAME [--fault-seed N]\n"
      "  plant:     --plant SPEC (prepends SPEC to the campaign stream)\n"
      "  selftest:  --selftest-shrink\n"
      "  soak:      --soak N [--soak-workers N] [--soak-deadline SECONDS]\n",
      argv0);
  return 2;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t end = s.find(',', pos);
    if (end == std::string::npos) end = s.size();
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

void print_run(const ChaosRun& r) {
  std::printf("%s\n", r.ledger_line().c_str());
}

/// Shrinker self-test: a synthetic oracle ("fails iff the plan has an
/// alloc rule at occurrence >= 4 AND any task rule") planted inside a
/// 5-clause haystack must minimize to exactly "alloc@4;task@0".  Checks
/// the clause-drop fixpoint, the halve-then-step scalar shrink, and the
/// to_string round-trip in one deterministic probe-counted pass.
int selftest_shrink() {
  const std::string planted = "kernel@1;alloc@7;flip:p=0.5;task@9;"
                              "mem-cap=262144";
  const ChaosPredicate oracle = [](const FaultPlan& p) {
    bool alloc_ge4 = false;
    bool has_task = false;
    for (const auto& r : p.rules) {
      if (r.site == FaultSite::kAlloc && r.at >= 4) alloc_ge4 = true;
      if (r.site == FaultSite::kTask) has_task = true;
    }
    return alloc_ge4 && has_task;
  };
  const ShrinkResult s =
      shrink_fault_plan(FaultPlan::parse(planted), oracle);
  const std::string golden = "alloc@4;task@0";
  std::printf("selftest-shrink: planted \"%s\"\n", planted.c_str());
  std::printf("selftest-shrink: minimized to \"%s\" in %d probes\n",
              s.spec.c_str(), s.probes);
  if (!s.converged || s.spec != golden) {
    std::fprintf(stderr,
                 "selftest-shrink: FAILED (expected \"%s\", converged=%d)\n",
                 golden.c_str(), s.converged ? 1 : 0);
    return 1;
  }
  if (!oracle(FaultPlan::parse(s.spec))) {
    std::fprintf(stderr, "selftest-shrink: minimized spec does not replay\n");
    return 1;
  }
  std::printf("selftest-shrink: ok\n");
  return 0;
}

/// Service soak: randomized per-request fault specs through a threaded
/// engine.  Gates: every ticket reaches a terminal state (a hang would
/// stall wait() and the CI step timeout), every kDone result validates,
/// no request fails outright (the ladder bottoms out on a fault-free
/// serial run), and device-pool accounting returns to zero.
int run_soak(const ChaosConfig& cfg, int n_requests, int workers,
             double deadline_seconds) {
  ServiceConfig svc;
  svc.workers = std::max(1, workers);
  svc.queue_depth = static_cast<std::size_t>(n_requests) + 1;  // admit all
  svc.default_deadline_seconds = deadline_seconds;
  svc.seed = cfg.seed;

  const CsrGraph g = chaos_make_graph(cfg);
  const std::int64_t leaks_before = Device::process_leaked_blocks();

  std::printf("chaos soak: %d requests, %d workers, systems=%zu, n=%lld\n",
              n_requests, svc.workers, cfg.systems.size(),
              static_cast<long long>(g.num_vertices()));

  ServiceEngine engine(svc);
  std::vector<std::shared_ptr<RequestTicket>> tickets;
  tickets.reserve(static_cast<std::size_t>(n_requests));
  for (int i = 0; i < n_requests; ++i) {
    PartitionOptions opts;
    opts.k = cfg.k;
    opts.seed = cfg.partition_seed + static_cast<std::uint64_t>(i);
    opts.threads = 2;  // soak wants real contention, not determinism
    opts.ranks = cfg.ranks;
    opts.gpu_host_workers = 2;
    opts.audit_level = cfg.audit;
    opts.fault_spec = chaos_generate_spec(cfg.seed, i, cfg.max_clauses);
    opts.fault_seed = chaos_fault_seed(cfg.seed, i);
    const auto& system =
        cfg.systems[static_cast<std::size_t>(i) % cfg.systems.size()];
    tickets.push_back(engine.submit(g, opts, Priority::kNormal,
                                    /*deadline_seconds=*/-1.0, system));
  }

  std::uint64_t done = 0, degraded = 0, invalid = 0, failed = 0,
                shed = 0, cancelled = 0;
  for (auto& t : tickets) {
    const RequestOutcome out = t->wait();  // a hang stalls here -> CI timeout
    switch (out.state) {
      case RequestState::kDone: {
        ++done;
        if (out.result.health.degraded) ++degraded;
        const std::string err = validate_partition(
            g, out.result.partition, out.result.cut, out.result.balance);
        if (!err.empty()) {
          ++invalid;
          std::fprintf(stderr, "soak: request %llu invalid: %s\n",
                       static_cast<unsigned long long>(out.id), err.c_str());
        }
        break;
      }
      case RequestState::kFailed:
        ++failed;
        std::fprintf(stderr, "soak: request %llu failed: %s\n",
                     static_cast<unsigned long long>(out.id),
                     out.attempt_trail.empty()
                         ? "(no trail)"
                         : out.attempt_trail.back().c_str());
        break;
      case RequestState::kShed: ++shed; break;
      case RequestState::kCancelled: ++cancelled; break;
      default: break;
    }
  }
  engine.shutdown(/*drain=*/true);
  const ServiceStats stats = engine.stats();
  const std::int64_t leaked = Device::process_leaked_blocks() - leaks_before;

  std::printf("soak: done=%llu (degraded %llu) shed=%llu cancelled=%llu "
              "failed=%llu invalid=%llu retries=%llu leaked=%lld\n",
              static_cast<unsigned long long>(done),
              static_cast<unsigned long long>(degraded),
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(cancelled),
              static_cast<unsigned long long>(failed),
              static_cast<unsigned long long>(invalid),
              static_cast<unsigned long long>(stats.retries),
              static_cast<long long>(leaked));

  bool ok = true;
  if (invalid != 0) {
    std::fprintf(stderr, "soak gate: %llu invalid partition(s)\n",
                 static_cast<unsigned long long>(invalid));
    ok = false;
  }
  if (failed != 0) {
    std::fprintf(stderr, "soak gate: %llu failed request(s) — the ladder "
                 "must bottom out on a fault-free serial run\n",
                 static_cast<unsigned long long>(failed));
    ok = false;
  }
  if (leaked != 0 || stats.leaked_blocks != 0) {
    std::fprintf(stderr, "soak gate: pool accounting did not return to "
                 "zero (delta %lld, stats %llu)\n",
                 static_cast<long long>(leaked),
                 static_cast<unsigned long long>(stats.leaked_blocks));
    ok = false;
  }
  if (done + shed + cancelled + failed !=
      static_cast<std::uint64_t>(n_requests)) {
    std::fprintf(stderr, "soak gate: ticket accounting mismatch\n");
    ok = false;
  }
  std::printf("soak: %s\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ChaosConfig cfg;
  cfg.specs = 100;
  std::string replay_spec, plant_spec, replay_system, ledger_path;
  std::uint64_t replay_fault_seed = 0;
  bool verbose = false, selftest = false;
  int soak_n = 0, soak_workers = 4;
  double soak_deadline = 0.0;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0],
                     a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--seed") cfg.seed = std::strtoull(next(), nullptr, 10);
    else if (a == "--specs") cfg.specs = std::atoi(next());
    else if (a == "--max-clauses") cfg.max_clauses = std::atoi(next());
    else if (a == "--systems") {
      const std::string v = next();
      if (v != "all") cfg.systems = split_csv(v);
    } else if (a == "--graph") cfg.graph = next();
    else if (a == "--n") cfg.graph_n = static_cast<vid_t>(std::atoll(next()));
    else if (a == "--k") cfg.k = static_cast<part_t>(std::atoi(next()));
    else if (a == "--threads") cfg.threads = std::atoi(next());
    else if (a == "--audit") {
      const std::string v = next();
      if (v == "off") cfg.audit = AuditLevel::kOff;
      else if (v == "phase") cfg.audit = AuditLevel::kPhase;
      else if (v == "paranoid") cfg.audit = AuditLevel::kParanoid;
      else return usage(argv[0]);
    } else if (a == "--ledger") ledger_path = next();
    else if (a == "--verbose") verbose = true;
    else if (a == "--replay") replay_spec = next();
    else if (a == "--plant") plant_spec = next();
    else if (a == "--system") replay_system = next();
    else if (a == "--fault-seed")
      replay_fault_seed = std::strtoull(next(), nullptr, 10);
    else if (a == "--selftest-shrink") selftest = true;
    else if (a == "--soak") soak_n = std::atoi(next());
    else if (a == "--soak-workers") soak_workers = std::atoi(next());
    else if (a == "--soak-deadline") soak_deadline = std::atof(next());
    else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], a.c_str());
      return usage(argv[0]);
    }
  }

  try {
    if (selftest) return selftest_shrink();
    if (soak_n > 0) return run_soak(cfg, soak_n, soak_workers, soak_deadline);

    if (!replay_spec.empty()) {
      if (replay_system.empty()) {
        std::fprintf(stderr, "--replay needs --system\n");
        return 2;
      }
      FaultPlan::parse(replay_spec);  // surface syntax errors as exit 2
      const CsrGraph g = chaos_make_graph(cfg);
      const std::uint64_t fseed = replay_fault_seed != 0
                                      ? replay_fault_seed
                                      : chaos_fault_seed(cfg.seed, 0);
      const ChaosRun run =
          chaos_run_spec(g, cfg, replay_system, replay_spec, fseed, 0);
      print_run(run);
      return run.verdict == ChaosVerdict::kViolation ? 1 : 0;
    }

    // --- campaign ---------------------------------------------------------
    std::printf("chaos campaign: seed=%llu specs=%d systems=%zu "
                "graph=%s n=%lld k=%d audit=%d%s\n",
                static_cast<unsigned long long>(cfg.seed), cfg.specs,
                cfg.systems.size(), cfg.graph.c_str(),
                static_cast<long long>(cfg.graph_n),
                static_cast<int>(cfg.k), static_cast<int>(cfg.audit),
                plant_spec.empty() ? "" : " (planted spec at #0)");

    ChaosReport report;
    if (plant_spec.empty()) {
      report = chaos_campaign(cfg);
    } else {
      // Planted mode: run the planted spec as index 0 against every
      // system (with shrinking on violation), then the seeded stream.
      FaultPlan::parse(plant_spec);
      const CsrGraph g = chaos_make_graph(cfg);
      for (const auto& system : cfg.systems) {
        ChaosRun run = chaos_run_spec(g, cfg, system, plant_spec,
                                      chaos_fault_seed(cfg.seed, 0), 0);
        if (run.verdict == ChaosVerdict::kViolation) {
          const std::string sys = system;
          const ChaosPredicate still_fails = [&](const FaultPlan& cand) {
            return chaos_run_spec(g, cfg, sys, cand.to_string(),
                                  chaos_fault_seed(cfg.seed, 0), 0)
                       .verdict == ChaosVerdict::kViolation;
          };
          run.reproducer =
              shrink_fault_plan(FaultPlan::parse(plant_spec), still_fails,
                                cfg.shrink_probes)
                  .spec;
          ++report.violations;
        } else if (run.verdict == ChaosVerdict::kValid) ++report.valid;
        else if (run.verdict == ChaosVerdict::kDegraded) ++report.degraded;
        else ++report.typed_errors;
        report.runs.push_back(std::move(run));
      }
      ChaosReport seeded = chaos_campaign(cfg);
      report.valid += seeded.valid;
      report.degraded += seeded.degraded;
      report.typed_errors += seeded.typed_errors;
      report.violations += seeded.violations;
      for (auto& r : seeded.runs) report.runs.push_back(std::move(r));
    }

    if (verbose) std::printf("%s", report.ledger().c_str());
    if (!ledger_path.empty()) {
      std::ofstream out(ledger_path);
      out << report.ledger();
    }
    for (const ChaosRun* v : report.violating()) {
      std::printf("VIOLATION %s\n", v->ledger_line().c_str());
      std::printf("  minimal reproducer: --fault-spec \"%s\" "
                  "--fault-seed %llu --system %s\n",
                  v->reproducer.c_str(),
                  static_cast<unsigned long long>(v->fault_seed),
                  v->system.c_str());
    }
    std::printf("summary: runs=%zu valid=%llu degraded=%llu "
                "typed-errors=%llu violations=%llu\n",
                report.runs.size(),
                static_cast<unsigned long long>(report.valid),
                static_cast<unsigned long long>(report.degraded),
                static_cast<unsigned long long>(report.typed_errors),
                static_cast<unsigned long long>(report.violations));
    return report.violations == 0 ? 0 : 1;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: fatal: %s\n", argv[0], e.what());
    return 1;
  }
}
