// gpmetis — command-line partitioner, mirroring the real Metis tool's
// interface: reads a METIS .graph (or DIMACS-9 .gr) file, partitions it,
// writes <input>.part.<k>, and prints the quality/timing summary.
//
// Usage:
//   gpmetis <graph-file> <k> [options]
// Options:
//   --system metis|parmetis|mt-metis|gp-metis|gp-metis-multi  (default gp-metis)
//   --eps <f>        imbalance tolerance (default 0.03)
//   --seed <n>       RNG seed (default 1)
//   --threads <n>    CPU threads for mt phases (default 8)
//   --ranks <n>      simulated MPI ranks (parmetis; default 8)
//   --devices <n>    simulated GPUs (gp-metis-multi; default 2)
//   --gpu-scan <m>   device scan/dispatch strategy: blocked|lookback
//                    (default lookback; DESIGN.md §3.9)
//   --dimacs         input is DIMACS-9 .gr instead of METIS .graph
//   --binary         input is the library's binary CSR snapshot
//   --report         print the per-part quality table
//   --ledger-json <path>  dump the cost-model ledger as JSON
//   --out <path>     partition file path (default <input>.part.<k>)
//   --fault-spec <s> fault-injection schedule, e.g. "alloc@3;kernel:p=0.01"
//                    (see src/util/fault.hpp for the full grammar)
//   --fault-seed <n> seed for probabilistic fault rules (default 0)
//   --audit <level>  invariant audits: off|phase|paranoid (default off)
//   --time-budget <s>  wall-clock budget in seconds; refinement is shed
//                    once it expires (default: unlimited)
//   --serve <n>      service mode: submit the request n times through the
//                    batched service engine (admission control, deadlines,
//                    retries) and print the engine's stats
//   --serve-workers <n>     service executor threads (default 2)
//   --serve-queue-depth <n> admission queue bound (default 64)
//   --serve-cost-budget <s> admission backlog budget, modeled seconds
//   --serve-deadline <s>    per-request deadline in seconds (0 = none)
//   --serve-retries <n>     max attempts per request (default 3)
//   --verbose        always print the run-health trail
//
// Exit codes: 0 success, 1 I/O or runtime error, 2 usage error,
// 3 success on a degraded path (faults/audits forced a fallback — the
// partition is valid but came off the nominal configuration).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/partitioner.hpp"
#include "core/report.hpp"
#include "hybrid/multi_gpu_partitioner.hpp"
#include "service/engine.hpp"
#include "io/binary_io.hpp"
#include "io/dimacs_io.hpp"
#include "io/metis_io.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: gpmetis <graph-file> <k> [--system NAME] [--eps F] "
               "[--seed N] [--threads N] [--init-trials N] [--ranks N] "
               "[--devices N] [--gpu-scan blocked|lookback] "
               "[--dimacs] [--out PATH] [--fault-spec S] [--fault-seed N] "
               "[--audit off|phase|paranoid] [--time-budget SECONDS] "
               "[--serve N] [--serve-workers N] [--serve-queue-depth N] "
               "[--serve-cost-budget S] [--serve-deadline S] "
               "[--serve-retries N] [--verbose]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gp;
  if (argc < 3) {
    usage();
    return 2;
  }
  const std::string path = argv[1];
  PartitionOptions opts;
  opts.k = std::atoi(argv[2]);
  std::string system = "gp-metis";
  std::string out_path;
  bool dimacs = false;
  bool binary = false;
  bool report = false;
  bool verbose = false;
  std::string ledger_path;
  int serve_requests = 0;  // 0 = one-shot mode (no service engine)
  ServiceConfig serve_cfg;
  serve_cfg.sleep_on_backoff = true;  // live service: really back off
  double serve_deadline = 0.0;
  for (int i = 3; i < argc; ++i) {
    auto next = [&]() -> const char* { return (i + 1 < argc) ? argv[++i] : ""; };
    if (!std::strcmp(argv[i], "--system")) system = next();
    else if (!std::strcmp(argv[i], "--eps")) opts.eps = std::atof(next());
    else if (!std::strcmp(argv[i], "--seed")) opts.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (!std::strcmp(argv[i], "--threads")) opts.threads = std::atoi(next());
    else if (!std::strcmp(argv[i], "--init-trials")) opts.init_trials = std::atoi(next());
    else if (!std::strcmp(argv[i], "--ranks")) opts.ranks = std::atoi(next());
    else if (!std::strcmp(argv[i], "--devices")) opts.gpu_devices = std::atoi(next());
    else if (!std::strcmp(argv[i], "--gpu-scan")) {
      const std::string m = next();
      if (m == "blocked") opts.gpu_scan = GpuScanMode::kBlocked;
      else if (m == "lookback") opts.gpu_scan = GpuScanMode::kLookback;
      else {
        std::fprintf(stderr, "--gpu-scan: expected blocked|lookback, got \"%s\"\n",
                     m.c_str());
        return 2;
      }
    }
    else if (!std::strcmp(argv[i], "--dimacs")) dimacs = true;
    else if (!std::strcmp(argv[i], "--binary")) binary = true;
    else if (!std::strcmp(argv[i], "--report")) report = true;
    else if (!std::strcmp(argv[i], "--ledger-json")) ledger_path = next();
    else if (!std::strcmp(argv[i], "--out")) out_path = next();
    else if (!std::strcmp(argv[i], "--fault-spec")) opts.fault_spec = next();
    else if (!std::strcmp(argv[i], "--fault-seed")) opts.fault_seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (!std::strcmp(argv[i], "--audit")) {
      try {
        opts.audit_level = parse_audit_level(next());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    }
    else if (!std::strcmp(argv[i], "--time-budget")) opts.time_budget_seconds = std::atof(next());
    else if (!std::strcmp(argv[i], "--serve")) serve_requests = std::atoi(next());
    else if (!std::strcmp(argv[i], "--serve-workers")) serve_cfg.workers = std::atoi(next());
    else if (!std::strcmp(argv[i], "--serve-queue-depth")) serve_cfg.queue_depth = static_cast<std::size_t>(std::atoll(next()));
    else if (!std::strcmp(argv[i], "--serve-cost-budget")) serve_cfg.cost_budget_seconds = std::atof(next());
    else if (!std::strcmp(argv[i], "--serve-deadline")) serve_deadline = std::atof(next());
    else if (!std::strcmp(argv[i], "--serve-retries")) serve_cfg.retry.max_attempts = std::atoi(next());
    else if (!std::strcmp(argv[i], "--verbose")) verbose = true;
    else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      usage();
      return 2;
    }
  }

  try {
    const CsrGraph g = binary   ? read_binary_graph_file(path)
                       : dimacs ? read_dimacs_gr_file(path)
                                : read_metis_graph_file(path);
    std::printf("%s: %d vertices, %lld edges\n", path.c_str(),
                g.num_vertices(), static_cast<long long>(g.num_edges()));

    if (serve_requests != 0) {
      // ---- service mode: the same request, n times, through the
      // batched engine (admission control / deadlines / retries) ----
      if (serve_requests < 0) {
        std::fprintf(stderr, "--serve requires a positive request count\n");
        return 2;
      }
      serve_cfg.default_deadline_seconds = serve_deadline;
      serve_cfg.seed = opts.seed;
      try {
        validate_service_config(serve_cfg);
        (void)make_partitioner_by_name(system);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "service config error: %s\n", e.what());
        return 2;
      }

      ServiceEngine engine(serve_cfg);
      std::vector<std::shared_ptr<RequestTicket>> tickets;
      tickets.reserve(static_cast<std::size_t>(serve_requests));
      for (int r = 0; r < serve_requests; ++r) {
        tickets.push_back(engine.submit(g, opts, Priority::kNormal,
                                        /*deadline=*/-1.0, system));
      }
      if (serve_cfg.workers == 0) {
        while (engine.run_one()) {
        }
      }
      bool any_failed = false;
      bool any_off_nominal = false;
      const RequestOutcome* best = nullptr;
      std::vector<RequestOutcome> outcomes;
      outcomes.reserve(tickets.size());
      for (auto& t : tickets) outcomes.push_back(t->wait());
      engine.shutdown(/*drain=*/true);
      for (const auto& o : outcomes) {
        if (o.state == RequestState::kFailed) any_failed = true;
        if (o.state != RequestState::kDone || o.result.health.degraded ||
            o.deadline_missed) {
          any_off_nominal = true;
        }
        if (o.state == RequestState::kDone &&
            (!best || o.result.cut < best->result.cut)) {
          best = &o;
        }
        if (verbose && o.state == RequestState::kShed) {
          std::printf("request %llu shed: %s\n",
                      static_cast<unsigned long long>(o.id),
                      o.shed_reason.c_str());
        }
      }
      std::printf("%s", format_service_stats(engine.stats()).c_str());
      if (best) {
        std::printf("best cut: %lld (request %llu, %d attempt%s)\n",
                    static_cast<long long>(best->result.cut),
                    static_cast<unsigned long long>(best->id),
                    best->attempts, best->attempts == 1 ? "" : "s");
        if (out_path.empty()) {
          out_path = path + ".part." + std::to_string(opts.k);
        }
        write_partition_file(out_path, best->result.partition.where);
        std::printf("partition written to %s\n", out_path.c_str());
      }
      if (any_failed || !best) return 1;
      return any_off_nominal ? 3 : 0;
    }

    std::unique_ptr<Partitioner> p;
    if (system == "metis") p = make_serial_partitioner();
    else if (system == "parmetis") p = make_par_partitioner();
    else if (system == "mt-metis") p = make_mt_partitioner();
    else if (system == "gp-metis") p = make_hybrid_partitioner();
    else if (system == "gp-metis-multi") p = make_multi_gpu_partitioner();
    else {
      std::fprintf(stderr, "unknown system: %s\n", system.c_str());
      return 2;
    }

    const auto r = p->run(g, opts);
    std::printf("system:   %s\n", p->name().c_str());
    std::printf("k:        %d   (eps %.3f)\n", opts.k, opts.eps);
    std::printf("edge cut: %lld\n", static_cast<long long>(r.cut));
    std::printf("balance:  %.4f\n", r.balance);
    std::printf("levels:   %d (coarsest %d vertices)\n", r.coarsen_levels,
                r.coarsest_vertices);
    std::printf("modeled:  %.4f s  (coarsen %.4f, initpart %.4f, "
                "uncoarsen %.4f, transfer %.4f)\n",
                r.modeled_seconds, r.phases.coarsen, r.phases.initpart,
                r.phases.uncoarsen, r.phases.transfer);
    std::printf("wall:     %.4f s (this machine)\n", r.wall_seconds);
    if (verbose || !opts.fault_spec.empty() || r.health.degraded) {
      std::printf("%s", format_health(r.health).c_str());
    }

    if (report) {
      std::printf("\n%s",
                  format_report(analyze_partition(g, r.partition)).c_str());
    }
    if (!ledger_path.empty()) {
      std::ofstream lj(ledger_path);
      if (!lj) throw std::runtime_error("cannot open " + ledger_path);
      lj << r.ledger.to_json();
      std::printf("cost ledger written to %s\n", ledger_path.c_str());
    }

    if (out_path.empty()) out_path = path + ".part." + std::to_string(opts.k);
    write_partition_file(out_path, r.partition.where);
    std::printf("partition written to %s\n", out_path.c_str());
    // A valid partition that came off a degraded path (fallbacks,
    // rollbacks, shed refinement) is reported distinctly so scripted
    // callers can tell "fine" from "fine, but the run self-healed".
    return r.health.degraded ? 3 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
